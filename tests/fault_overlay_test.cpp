#include "src/fault/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/vl_multiplier.hpp"
#include "src/netlist/builder.hpp"
#include "src/workload/patterns.hpp"

namespace agingsim {
namespace {

TEST(FaultOverlayTest, RejectsInvalidSites) {
  FaultOverlay overlay(10);
  EXPECT_THROW(overlay.add({.kind = FaultKind::kStuckAt0, .gate = 10}),
               std::invalid_argument);
  EXPECT_THROW(overlay.add({.kind = FaultKind::kDelayOutlier,
                            .gate = 0,
                            .delay_factor = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(overlay.add({.kind = FaultKind::kDelayOutlier,
                            .gate = 0,
                            .delay_factor = -2.0}),
               std::invalid_argument);
  EXPECT_THROW(
      overlay.add({.kind = FaultKind::kTransient, .gate = 0, .cycle = -1}),
      std::invalid_argument);
  EXPECT_EQ(overlay.num_faults(), 0u);
}

TEST(FaultOverlayTest, LookupSemantics) {
  FaultOverlay overlay(8);
  overlay.add({.kind = FaultKind::kStuckAt0, .gate = 1});
  overlay.add({.kind = FaultKind::kStuckAt1, .gate = 2});
  overlay.add(
      {.kind = FaultKind::kDelayOutlier, .gate = 3, .delay_factor = 5.0});
  overlay.add({.kind = FaultKind::kTransient, .gate = 4, .cycle = 7});

  EXPECT_EQ(overlay.stuck_value(0), Logic::kX);
  EXPECT_EQ(overlay.stuck_value(1), Logic::kZero);
  EXPECT_EQ(overlay.stuck_value(2), Logic::kOne);
  EXPECT_DOUBLE_EQ(overlay.delay_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(overlay.delay_factor(3), 5.0);
  EXPECT_TRUE(overlay.has_delay_faults());
  EXPECT_TRUE(overlay.has_transients());
  EXPECT_TRUE(overlay.transient_fires(4, 7));
  EXPECT_FALSE(overlay.transient_fires(4, 6));
  EXPECT_FALSE(overlay.transient_fires(3, 7));
  // Persistent faults are active on every cycle; the transient only arms
  // cycle 7 (already covered by the persistent ones here).
  EXPECT_TRUE(overlay.active_at(0));
  EXPECT_TRUE(overlay.active_at(7));

  FaultOverlay transient_only(8);
  transient_only.add({.kind = FaultKind::kTransient, .gate = 4, .cycle = 7});
  EXPECT_FALSE(transient_only.active_at(6));
  EXPECT_TRUE(transient_only.active_at(7));
  EXPECT_FALSE(transient_only.active_at(8));
}

TEST(FaultOverlayTest, LastStuckAtWins) {
  FaultOverlay overlay(4);
  overlay.add({.kind = FaultKind::kStuckAt0, .gate = 0});
  overlay.add({.kind = FaultKind::kStuckAt1, .gate = 0});
  EXPECT_EQ(overlay.stuck_value(0), Logic::kOne);
}

// Fixture: a 4x4 column-bypassing multiplier plus a small operand stream.
class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : mult_(build_column_bypass_multiplier(4)),
        tech_(default_tech_library()) {
    Rng rng(99);
    patterns_ = uniform_patterns(rng, 4, 200);
  }

  MultiplierNetlist mult_;
  TechLibrary tech_;
  std::vector<OperandPattern> patterns_;
};

TEST_F(FaultInjectionTest, OverlaySizeMustMatchNetlist) {
  FaultOverlay wrong(mult_.netlist.num_gates() + 1);
  EXPECT_THROW(compute_op_trace(mult_, tech_, patterns_,
                                TraceOptions{.faults = &wrong}),
               std::invalid_argument);
}

TEST_F(FaultInjectionTest, StuckAtCorruptsWithoutMutatingTheNetlist) {
  // Stuck-at faults on output-cone drivers must corrupt at least some
  // products; every op is marked fault-active and mismatches are recorded,
  // not thrown.
  FaultOverlay overlay(mult_.netlist.num_gates());
  int sites = 0;
  for (const NetId out : mult_.netlist.output_nets()) {
    const std::int32_t driver = mult_.netlist.driver_of(out);
    if (driver < 0) continue;
    overlay.add({.kind = sites % 2 == 0 ? FaultKind::kStuckAt0
                                        : FaultKind::kStuckAt1,
                 .gate = static_cast<GateId>(driver)});
    ++sites;
  }
  ASSERT_GT(sites, 0);

  const auto faulty = compute_op_trace(mult_, tech_, patterns_,
                                       TraceOptions{.faults = &overlay});
  std::size_t wrong = 0;
  for (const OpTrace& op : faulty) {
    EXPECT_TRUE(op.fault_active);
    EXPECT_EQ(op.golden, reference_multiply(op.a, op.b, 4));
    EXPECT_EQ(op.correct, op.product == op.golden);
    wrong += !op.correct;
  }
  EXPECT_GT(wrong, 0u);

  // The same MultiplierNetlist, traced without the overlay, is pristine:
  // injection happened in the simulator, never in the shared netlist.
  const auto clean = compute_op_trace(mult_, tech_, patterns_);
  for (const OpTrace& op : clean) {
    EXPECT_TRUE(op.correct);
    EXPECT_FALSE(op.fault_active);
  }
}

TEST_F(FaultInjectionTest, TransientAffectsOnlyItsArmedCycle) {
  // Flip the driver of product bit 0 on one mid-stream cycle: bit 0 of the
  // product inverts, so the strike is observable at exactly that op.
  const std::int32_t driver =
      mult_.netlist.driver_of(mult_.netlist.output_nets()[0]);
  ASSERT_GE(driver, 0);
  const std::int64_t strike = 50;
  FaultOverlay overlay(mult_.netlist.num_gates());
  overlay.add({.kind = FaultKind::kTransient,
               .gate = static_cast<GateId>(driver),
               .cycle = strike});

  const auto faulty = compute_op_trace(mult_, tech_, patterns_,
                                       TraceOptions{.faults = &overlay});
  const auto clean = compute_op_trace(mult_, tech_, patterns_);
  ASSERT_EQ(faulty.size(), clean.size());
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    if (static_cast<std::int64_t>(i) == strike) {
      EXPECT_TRUE(faulty[i].fault_active);
      EXPECT_NE(faulty[i].product, clean[i].product);
      EXPECT_FALSE(faulty[i].correct);
    } else {
      EXPECT_FALSE(faulty[i].fault_active);
      // Products recover immediately after the strike (combinational
      // netlist: no state to corrupt). Delays on cycle strike+1 may differ
      // because the recovery adds a transition, so compare products only.
      EXPECT_EQ(faulty[i].product, clean[i].product);
      EXPECT_TRUE(faulty[i].correct);
    }
  }
}

TEST_F(FaultInjectionTest, DelayOutlierSlowsOnlyWhileInstalled) {
  FaultOverlay overlay(mult_.netlist.num_gates());
  for (const NetId out : mult_.netlist.output_nets()) {
    const std::int32_t driver = mult_.netlist.driver_of(out);
    if (driver < 0) continue;
    overlay.add({.kind = FaultKind::kDelayOutlier,
                 .gate = static_cast<GateId>(driver),
                 .delay_factor = 10.0});
  }

  const auto faulty = compute_op_trace(mult_, tech_, patterns_,
                                       TraceOptions{.faults = &overlay});
  const auto clean = compute_op_trace(mult_, tech_, patterns_);
  double faulty_sum = 0.0, clean_sum = 0.0;
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    // Pure delay faults never change values.
    EXPECT_EQ(faulty[i].product, clean[i].product);
    EXPECT_TRUE(faulty[i].correct);
    faulty_sum += faulty[i].delay_ps;
    clean_sum += clean[i].delay_ps;
  }
  EXPECT_GT(faulty_sum, clean_sum);

  // Removing the overlay restores the original delays exactly.
  MultiplierSim sim(mult_, tech_);
  sim.set_fault_overlay(&overlay);
  sim.set_fault_overlay(nullptr);
  double restored = 0.0;
  for (const OperandPattern& pat : patterns_) {
    restored += sim.apply(pat.a, pat.b).output_settle_ps;
  }
  EXPECT_DOUBLE_EQ(restored, clean_sum);
}

TEST(GoldenCheckTest, MismatchMessageCarriesTheEvidence) {
  // A deliberately broken 2-bit "multiplier" (upper product bits tied to 0,
  // p1 missing the a1&b0 term): the fault-free golden check must throw and
  // the message must identify the failing pattern completely.
  NetlistBuilder b;
  const auto a = b.input_bus("a", 2);
  const auto bb = b.input_bus("b", 2);
  std::vector<NetId> p;
  p.push_back(b.and2(a[0], bb[0]));
  p.push_back(b.and2(a[0], bb[1]));
  p.push_back(b.buf(b.zero()));
  p.push_back(b.buf(b.zero()));
  b.output_bus("p", p);
  MultiplierNetlist broken{.netlist = b.netlist(),
                           .arch = MultiplierArch::kArray,
                           .width = 2,
                           .a_first_input = 0,
                           .b_first_input = 2};

  TechLibrary tech = default_tech_library();
  // Pattern 0 is fine (1*1 = 1); pattern 1 (3*2 = 6) exposes the break.
  const std::vector<OperandPattern> pats = {{1, 1}, {3, 2}};
  try {
    compute_op_trace(broken, tech, pats);
    FAIL() << "golden check did not throw";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("pattern index 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3 * 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected 6"), std::string::npos) << msg;
    EXPECT_NE(msg.find("0x6"), std::string::npos) << msg;
    EXPECT_NE(msg.find("netlist says 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("0x2"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace agingsim
