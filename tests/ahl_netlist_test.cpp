#include "src/core/ahl_netlist.hpp"

#include <gtest/gtest.h>

#include "src/core/judging.hpp"
#include "src/netlist/techlib.hpp"
#include "src/sim/timing_sim.hpp"
#include "src/workload/rng.hpp"

namespace agingsim {
namespace {

bool eval_netlist(const JudgingNetlist& jn, TimingSim& sim,
                  std::vector<Logic>& pattern, std::uint64_t operand) {
  sim.load_bus(pattern, operand, jn.width, 0);
  sim.step(pattern);
  return sim.output_bits() & 1;
}

TEST(AhlNetlistTest, ExhaustiveEquivalenceWidth8) {
  // Every skip value, every operand: the gate-level judging block must
  // agree with the behavioural model the system simulator uses.
  for (int skip = 0; skip <= 9; ++skip) {
    const JudgingNetlist jn = build_judging_block_netlist(8, skip);
    const JudgingBlock jb(8, skip);
    TimingSim sim(jn.netlist, default_tech_library());
    std::vector<Logic> pattern(jn.netlist.num_inputs());
    for (std::uint64_t v = 0; v < 256; ++v) {
      ASSERT_EQ(eval_netlist(jn, sim, pattern, v), jb.one_cycle(v))
          << "skip " << skip << " operand " << v;
    }
  }
}

TEST(AhlNetlistTest, RandomizedEquivalenceWide) {
  for (int width : {16, 32}) {
    for (int skip : {width / 2 - 1, width / 2, width / 2 + 1}) {
      const JudgingNetlist jn = build_judging_block_netlist(width, skip);
      const JudgingBlock jb(width, skip);
      TimingSim sim(jn.netlist, default_tech_library());
      std::vector<Logic> pattern(jn.netlist.num_inputs());
      Rng rng(0xE0 + static_cast<std::uint64_t>(width * 100 + skip));
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.next_bits(width);
        ASSERT_EQ(eval_netlist(jn, sim, pattern, v), jb.one_cycle(v))
            << width << "/" << skip << " operand " << v;
      }
    }
  }
}

TEST(AhlNetlistTest, BoundaryOperands) {
  const JudgingNetlist jn = build_judging_block_netlist(16, 8);
  TimingSim sim(jn.netlist, default_tech_library());
  std::vector<Logic> pattern(jn.netlist.num_inputs());
  EXPECT_TRUE(eval_netlist(jn, sim, pattern, 0x0000));   // 16 zeros
  EXPECT_TRUE(eval_netlist(jn, sim, pattern, 0x00FF));   // exactly 8
  EXPECT_FALSE(eval_netlist(jn, sim, pattern, 0x01FF));  // 7 zeros
  EXPECT_FALSE(eval_netlist(jn, sim, pattern, 0xFFFF));  // 0 zeros
}

TEST(AhlNetlistTest, DegenerateSkips) {
  const JudgingNetlist always = build_judging_block_netlist(8, 0);
  const JudgingNetlist never = build_judging_block_netlist(8, 9);
  TimingSim sa(always.netlist, default_tech_library());
  TimingSim sn(never.netlist, default_tech_library());
  std::vector<Logic> pa(always.netlist.num_inputs());
  std::vector<Logic> pn(never.netlist.num_inputs());
  for (std::uint64_t v : {0ull, 1ull, 127ull, 255ull}) {
    sa.load_bus(pa, v, 8, 0);
    sa.step(pa);
    EXPECT_EQ(sa.output_bits() & 1, 1u);
    sn.load_bus(pn, v, 8, 0);
    sn.step(pn);
    EXPECT_EQ(sn.output_bits() & 1, 0u);
  }
}

TEST(AhlNetlistTest, AreaScalesWithWidth) {
  const auto a16 = build_judging_block_netlist(16, 8);
  const auto a32 = build_judging_block_netlist(32, 16);
  EXPECT_GT(a32.netlist.transistor_count(), a16.netlist.transistor_count());
  // The judging block is tiny next to the multiplier it serves (the 16x16
  // column-bypassing multiplier is ~18k transistors).
  EXPECT_LT(a16.netlist.transistor_count(), 3000);
}

TEST(AhlNetlistTest, Validation) {
  EXPECT_THROW(build_judging_block_netlist(1, 0), std::invalid_argument);
  EXPECT_THROW(build_judging_block_netlist(33, 5), std::invalid_argument);
  EXPECT_THROW(build_judging_block_netlist(16, -1), std::invalid_argument);
  EXPECT_THROW(build_judging_block_netlist(16, 18), std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
