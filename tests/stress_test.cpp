#include "src/aging/stress.hpp"

#include <gtest/gtest.h>

#include "src/netlist/builder.hpp"

namespace agingsim {
namespace {

TEST(StressTest, ProbabilitiesAreWellFormed) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  nb.netlist().mark_output(nb.and2(a, b), "y");
  const StressProfile p =
      estimate_stress(nb.netlist(), default_tech_library(), 1, 2000);
  ASSERT_EQ(p.net_p_one.size(), nb.netlist().num_nets());
  ASSERT_EQ(p.pmos_stress.size(), nb.netlist().num_gates());
  for (double v : p.net_p_one) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  for (GateId g = 0; g < nb.netlist().num_gates(); ++g) {
    EXPECT_NEAR(p.pmos_stress[g] + p.nmos_stress[g], 1.0, 1e-12);
  }
}

TEST(StressTest, GateProbabilitiesMatchTheory) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId y_and = nb.and2(a, b);   // P(1) = 1/4
  const NetId y_or = nb.or2(a, b);     // P(1) = 3/4
  const NetId y_xor = nb.xor2(a, b);   // P(1) = 1/2
  const NetId y_inv = nb.inv(a);       // P(1) = 1/2
  nb.netlist().mark_output(y_and, "and");
  nb.netlist().mark_output(y_or, "or");
  nb.netlist().mark_output(y_xor, "xor");
  nb.netlist().mark_output(y_inv, "inv");
  const StressProfile p =
      estimate_stress(nb.netlist(), default_tech_library(), 2, 8000);
  EXPECT_NEAR(p.net_p_one[y_and], 0.25, 0.02);
  EXPECT_NEAR(p.net_p_one[y_or], 0.75, 0.02);
  EXPECT_NEAR(p.net_p_one[y_xor], 0.50, 0.02);
  EXPECT_NEAR(p.net_p_one[y_inv], 0.50, 0.02);
}

TEST(StressTest, TieNetsAreDeterministic) {
  NetlistBuilder nb;
  const NetId z = nb.zero();
  const NetId o = nb.one();
  nb.input("a");
  nb.netlist().mark_output(z, "z");
  nb.netlist().mark_output(o, "o");
  const StressProfile p =
      estimate_stress(nb.netlist(), default_tech_library(), 3, 100);
  EXPECT_DOUBLE_EQ(p.net_p_one[z], 0.0);
  EXPECT_DOUBLE_EQ(p.net_p_one[o], 1.0);
}

TEST(StressTest, RejectsZeroPatterns) {
  NetlistBuilder nb;
  nb.input("a");
  EXPECT_THROW(estimate_stress(nb.netlist(), default_tech_library(), 1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
