#include "src/netlist/builder.hpp"

#include <gtest/gtest.h>

#include "src/netlist/techlib.hpp"
#include "src/sim/timing_sim.hpp"

namespace agingsim {
namespace {

// Helper: evaluate a 2-output builder-made adder over all input combos by
// simulation.
struct AdderHarness {
  NetlistBuilder nb;
  std::vector<NetId> ins;
  AdderBits out{kInvalidNet, kInvalidNet};

  void finish() {
    nb.netlist().mark_output(out.sum, "sum");
    nb.netlist().mark_output(out.carry, "carry");
    nb.netlist().validate();
  }

  std::pair<bool, bool> eval(std::uint64_t bits) {
    TimingSim sim(nb.netlist(), default_tech_library());
    std::vector<Logic> pattern(nb.netlist().num_inputs());
    for (std::size_t i = 0; i < ins.size(); ++i) {
      pattern[i] = logic_from_bool((bits >> i) & 1);
    }
    sim.step(pattern);
    const std::uint64_t o = sim.output_bits();
    return {(o & 1) != 0, (o & 2) != 0};
  }
};

TEST(BuilderTest, ConstantsAreCached) {
  NetlistBuilder nb;
  EXPECT_EQ(nb.zero(), nb.zero());
  EXPECT_EQ(nb.one(), nb.one());
  EXPECT_NE(nb.zero(), nb.one());
  EXPECT_TRUE(nb.is_zero(nb.zero()));
  EXPECT_TRUE(nb.is_one(nb.one()));
  EXPECT_FALSE(nb.is_zero(nb.one()));
}

TEST(BuilderTest, AndOrXorConstantFolding) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  nb.zero();  // materialize the tie cells before counting gates
  nb.one();
  const std::size_t before = nb.netlist().num_gates();
  EXPECT_EQ(nb.and2(a, nb.zero()), nb.zero());
  EXPECT_EQ(nb.and2(nb.one(), a), a);
  EXPECT_EQ(nb.or2(a, nb.one()), nb.one());
  EXPECT_EQ(nb.or2(nb.zero(), a), a);
  EXPECT_EQ(nb.xor2(a, nb.zero()), a);
  // None of the folds above may create gates.
  EXPECT_EQ(nb.netlist().num_gates(), before);
  // xor with one creates exactly one inverter.
  const NetId na = nb.xor2(a, nb.one());
  EXPECT_EQ(nb.netlist().num_gates(), before + 1);
  EXPECT_EQ(nb.netlist()
                .gate(static_cast<GateId>(nb.netlist().driver_of(na)))
                .kind,
            CellKind::kInv);
}

TEST(BuilderTest, FullAdderTruthTable) {
  AdderHarness h;
  h.ins = {h.nb.input("a"), h.nb.input("b"), h.nb.input("c")};
  h.out = h.nb.full_adder(h.ins[0], h.ins[1], h.ins[2]);
  h.finish();
  for (std::uint64_t bits = 0; bits < 8; ++bits) {
    const int total = static_cast<int>((bits & 1) + ((bits >> 1) & 1) +
                                       ((bits >> 2) & 1));
    const auto [sum, carry] = h.eval(bits);
    EXPECT_EQ(sum, (total & 1) != 0) << bits;
    EXPECT_EQ(carry, total >= 2) << bits;
  }
}

TEST(BuilderTest, HalfAdderTruthTable) {
  AdderHarness h;
  h.ins = {h.nb.input("a"), h.nb.input("b")};
  h.out = h.nb.half_adder(h.ins[0], h.ins[1]);
  h.finish();
  for (std::uint64_t bits = 0; bits < 4; ++bits) {
    const int total = static_cast<int>((bits & 1) + ((bits >> 1) & 1));
    const auto [sum, carry] = h.eval(bits);
    EXPECT_EQ(sum, (total & 1) != 0) << bits;
    EXPECT_EQ(carry, total >= 2) << bits;
  }
}

TEST(BuilderTest, FullAdderDegeneratesWithZeroPins) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  nb.zero();  // materialize the tie cell before counting gates
  // One zero pin -> half adder (2 gates: XOR + AND).
  const std::size_t g0 = nb.netlist().num_gates();
  nb.full_adder(a, b, nb.zero());
  EXPECT_EQ(nb.netlist().num_gates(), g0 + 2);
  // Two zero pins -> plain wire, no gates.
  const std::size_t g1 = nb.netlist().num_gates();
  const AdderBits wire = nb.full_adder(a, nb.zero(), nb.zero());
  EXPECT_EQ(nb.netlist().num_gates(), g1);
  EXPECT_EQ(wire.sum, a);
  EXPECT_TRUE(nb.is_zero(wire.carry));
}

TEST(BuilderTest, BusHelpers) {
  NetlistBuilder nb;
  const auto bus = nb.input_bus("x", 4);
  ASSERT_EQ(bus.size(), 4u);
  EXPECT_EQ(nb.netlist().input_name(2), "x[2]");
  nb.output_bus("y", bus);
  EXPECT_EQ(nb.netlist().num_outputs(), 4u);
  EXPECT_EQ(nb.netlist().output_name(3), "y[3]");
}

}  // namespace
}  // namespace agingsim
