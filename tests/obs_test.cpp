// The observability layer's contracts (docs/OBSERVABILITY.md): disabled
// sites record nothing, shards merge across threads, trace rings keep the
// newest spans on wraparound, and the Chrome trace export is well-formed
// JSON whose complete events nest consistently.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace agingsim {
namespace {

/// Restores the global recorder state and the default ring capacity no
/// matter how a test exits — other tests assume everything is off.
struct ObsQuiesce {
  ~ObsQuiesce() {
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
    obs::set_trace_ring_capacity(16384);
  }
};

const obs::MetricValue* find_metric(const std::vector<obs::MetricValue>& snap,
                                    std::string_view name) {
  for (const obs::MetricValue& m : snap) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator: enough of RFC 8259 to prove the
// exports parse (objects, arrays, strings with escapes, numbers, literals).
// Returns the position one past the value, or npos on a syntax error.

constexpr std::size_t kBad = std::string::npos;

std::size_t skip_ws(std::string_view s, std::size_t p) {
  while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) ++p;
  return p;
}

std::size_t parse_value(std::string_view s, std::size_t p);

std::size_t parse_string(std::string_view s, std::size_t p) {
  if (p >= s.size() || s[p] != '"') return kBad;
  for (++p; p < s.size(); ++p) {
    if (s[p] == '\\') {
      ++p;
      continue;
    }
    if (s[p] == '"') return p + 1;
  }
  return kBad;
}

std::size_t parse_number(std::string_view s, std::size_t p) {
  const std::size_t start = p;
  if (p < s.size() && s[p] == '-') ++p;
  while (p < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[p])) || s[p] == '.' ||
          s[p] == 'e' || s[p] == 'E' || s[p] == '+' || s[p] == '-')) {
    ++p;
  }
  return p > start ? p : kBad;
}

std::size_t parse_container(std::string_view s, std::size_t p, char open,
                            char close, bool keyed) {
  if (p >= s.size() || s[p] != open) return kBad;
  p = skip_ws(s, p + 1);
  if (p < s.size() && s[p] == close) return p + 1;
  while (true) {
    if (keyed) {
      p = parse_string(s, skip_ws(s, p));
      if (p == kBad) return kBad;
      p = skip_ws(s, p);
      if (p >= s.size() || s[p] != ':') return kBad;
      ++p;
    }
    p = parse_value(s, p);
    if (p == kBad) return kBad;
    p = skip_ws(s, p);
    if (p >= s.size()) return kBad;
    if (s[p] == close) return p + 1;
    if (s[p] != ',') return kBad;
    p = skip_ws(s, p + 1);
  }
}

std::size_t parse_value(std::string_view s, std::size_t p) {
  p = skip_ws(s, p);
  if (p >= s.size()) return kBad;
  switch (s[p]) {
    case '{': return parse_container(s, p, '{', '}', true);
    case '[': return parse_container(s, p, '[', ']', false);
    case '"': return parse_string(s, p);
    case 't': return s.compare(p, 4, "true") == 0 ? p + 4 : kBad;
    case 'f': return s.compare(p, 5, "false") == 0 ? p + 5 : kBad;
    case 'n': return s.compare(p, 4, "null") == 0 ? p + 4 : kBad;
    default: return parse_number(s, p);
  }
}

bool is_valid_json(std::string_view s) {
  const std::size_t end = parse_value(s, 0);
  return end != kBad && skip_ws(s, end) == s.size();
}

/// ts (or dur) of the event containing the span name, parsed as double.
double event_field(const std::string& json, std::string_view name,
                   std::string_view field) {
  const std::size_t at = json.find('"' + std::string(name) + '"');
  EXPECT_NE(at, std::string::npos) << "span " << name << " not exported";
  const std::size_t f =
      json.find('"' + std::string(field) + "\": ", at);
  EXPECT_NE(f, std::string::npos);
  return std::stod(json.substr(f + field.size() + 4));
}

// ---------------------------------------------------------------------------

TEST(ObsMetricsTest, DisabledSitesRecordNothing) {
  ObsQuiesce quiesce;
  obs::set_metrics_enabled(false);
  obs::reset_metrics();
  const obs::Counter& c = obs::counter("obs_test.off_counter");
  const obs::Gauge& g = obs::gauge("obs_test.off_gauge");
  static constexpr double kBounds[] = {1.0};
  const obs::Histogram& h = obs::histogram("obs_test.off_hist", kBounds);
  c.add(5);
  g.record(42);
  h.observe(0.5);

  const auto snap = obs::metrics_snapshot();
  for (const char* name :
       {"obs_test.off_counter", "obs_test.off_gauge", "obs_test.off_hist"}) {
    const obs::MetricValue* m = find_metric(snap, name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->value, 0u) << name;
    EXPECT_EQ(m->sum, 0u) << name;
  }
}

TEST(ObsMetricsTest, ShardsMergeAcrossThreads) {
  ObsQuiesce quiesce;
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  const obs::Counter& c = obs::counter("obs_test.merge_counter");
  const obs::Gauge& g = obs::gauge("obs_test.merge_gauge");
  static constexpr double kBounds[] = {10.0, 100.0};
  const obs::Histogram& h = obs::histogram("obs_test.merge_hist", kBounds);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 100; ++i) c.add();
        g.record(10 * (t + 1));
        h.observe(5.0);    // bucket <= 10
        h.observe(50.0);   // bucket <= 100
        h.observe(500.0);  // overflow bucket
      });
    }
  }  // joins — retired shards must still contribute to the snapshot

  const auto snap = obs::metrics_snapshot();
  const obs::MetricValue* counter = find_metric(snap, "obs_test.merge_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 400u);

  const obs::MetricValue* gauge = find_metric(snap, "obs_test.merge_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 40u);  // max across threads, not the sum

  const obs::MetricValue* hist = find_metric(snap, "obs_test.merge_hist");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->buckets.size(), 3u);
  EXPECT_EQ(hist->buckets[0], 4u);
  EXPECT_EQ(hist->buckets[1], 4u);
  EXPECT_EQ(hist->buckets[2], 4u);
  EXPECT_EQ(hist->value, 12u);  // total observation count
  EXPECT_EQ(hist->sum, 4u * (5 + 50 + 500));
}

TEST(ObsMetricsTest, DeterministicOnlyFiltersWallTimeMetrics) {
  ObsQuiesce quiesce;
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  obs::counter("obs_test.det_counter").add();
  obs::counter("obs_test.wall_counter", /*deterministic=*/false).add();

  const std::string all = obs::metrics_json(/*deterministic_only=*/false);
  const std::string det = obs::metrics_json(/*deterministic_only=*/true);
  EXPECT_TRUE(is_valid_json(all)) << all;
  EXPECT_TRUE(is_valid_json(det)) << det;
  EXPECT_NE(all.find("obs_test.wall_counter"), std::string::npos);
  EXPECT_NE(det.find("obs_test.det_counter"), std::string::npos);
  EXPECT_EQ(det.find("obs_test.wall_counter"), std::string::npos) << det;
}

TEST(ObsMetricsTest, MismatchedKindReregistrationThrows) {
  const obs::Counter& c = obs::counter("obs_test.kind_clash");
  (void)c;
  EXPECT_THROW(obs::gauge("obs_test.kind_clash"), std::logic_error);
}

TEST(ObsTraceTest, DisabledSpansRecordNothing) {
  ObsQuiesce quiesce;
  obs::set_trace_enabled(false);
  obs::reset_trace();
  { obs::TraceSpan span("obs_test.never"); }
  const std::string json = obs::trace_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_EQ(json.find("obs_test.never"), std::string::npos) << json;
}

TEST(ObsTraceTest, RingWraparoundKeepsNewestSpans) {
  ObsQuiesce quiesce;
  obs::set_trace_ring_capacity(8);
  obs::set_trace_enabled(true);
  obs::reset_trace();
  for (std::uint64_t i = 0; i < 20; ++i) {
    obs::TraceSpan span("obs_test.wrap", i);
  }
  obs::set_trace_enabled(false);

  const std::string json = obs::trace_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  // Newest 8 spans (args 12..19) survive; the oldest 12 were overwritten.
  for (std::uint64_t arg = 12; arg < 20; ++arg) {
    EXPECT_NE(json.find("\"v\": " + std::to_string(arg)), std::string::npos)
        << "missing newest span arg " << arg;
  }
  for (std::uint64_t arg = 0; arg < 12; ++arg) {
    EXPECT_EQ(json.find("\"v\": " + std::to_string(arg) + "\n"),
              std::string::npos)
        << "overwritten span arg " << arg << " resurfaced";
  }
  EXPECT_NE(json.find("\"dropped_events\": 12"), std::string::npos) << json;
  EXPECT_EQ(obs::trace_dropped_spans(), 12u);
}

TEST(ObsTraceTest, ExportIsChromeTraceJsonWithNestedCompleteEvents) {
  ObsQuiesce quiesce;
  obs::set_trace_enabled(true);
  obs::reset_trace();
  {
    obs::TraceSpan outer("obs_test.outer");
    {
      obs::TraceSpan inner("obs_test.inner", 7);
    }
  }
  obs::set_trace_enabled(false);

  const std::string json = obs::trace_json();
  ASSERT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);

  // Complete events carry begin (ts) and duration (dur); the inner span's
  // window must sit inside the outer's — mismatched timestamps would break
  // the nesting every trace viewer renders.
  const double outer_ts = event_field(json, "obs_test.outer", "ts");
  const double outer_dur = event_field(json, "obs_test.outer", "dur");
  const double inner_ts = event_field(json, "obs_test.inner", "ts");
  const double inner_dur = event_field(json, "obs_test.inner", "dur");
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur + 1e-9);
  EXPECT_GE(outer_dur, 0.0);
  EXPECT_GE(inner_dur, 0.0);
}

TEST(ObsTraceTest, SpanEnabledAtConstructionRecordsDespiteLaterDisable) {
  ObsQuiesce quiesce;
  obs::set_trace_enabled(true);
  obs::reset_trace();
  {
    obs::TraceSpan span("obs_test.mid_disable");
    obs::set_trace_enabled(false);
  }
  const std::string json = obs::trace_json();
  EXPECT_NE(json.find("obs_test.mid_disable"), std::string::npos) << json;
}

}  // namespace
}  // namespace agingsim
