// Socket-chaos hardening tests (docs/SERVING.md): the deterministic
// AGINGSIM_SERVE_CHAOS fault layer (spec parsing, hook bounds, loss-free
// round trips, mid-frame disconnects) plus the server's defences against
// hostile sockets — slow-loris read deadlines, idle timeouts and the
// per-connection in-flight cap.

#include "src/serve/chaos.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/json.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"

namespace agingsim::serve {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Scoped chaos override: installs a config for the test body and always
/// restores the disabled default so sibling tests see a clean transport.
class ChaosGuard {
 public:
  explicit ChaosGuard(const ServeChaosConfig& config) {
    set_serve_chaos_for_tests(config);
  }
  ~ChaosGuard() { set_serve_chaos_for_tests(ServeChaosConfig{}); }
};

/// Scoped environment variable for from_env tests.
class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvVar() { ::unsetenv(name_); }

 private:
  const char* name_;
};

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_(fs::temp_directory_path() /
              (std::string("agingsim_chaos_test_") + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::optional<JsonValue> call(int fd, const std::string& payload) {
  if (!write_frame_fd(fd, payload)) return std::nullopt;
  const auto frame = read_frame_fd(fd);
  if (!frame.has_value()) return std::nullopt;
  return parse_json(*frame);
}

ServerConfig chaos_server_config(const TempDir& dir) {
  ServerConfig config;
  config.socket_path = (dir.path() / "agingd.sock").string();
  config.workers = 1;
  config.admission.capacity = 8;
  config.drain_grace_ms = 500;
  config.cache_budget_bytes = 8u << 20;
  config.service.checkpoint_root = (dir.path() / "ckpt").string();
  config.service.runner.max_retries = 0;
  return config;
}

// --- spec parsing ----------------------------------------------------------

TEST(ServeChaos, FromEnvParsesFullSpec) {
  const EnvVar env("AGINGSIM_SERVE_CHAOS", "7:0.3:tbsd");
  const ServeChaosConfig cfg = ServeChaosConfig::from_env();
  EXPECT_TRUE(cfg.enabled());
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_DOUBLE_EQ(cfg.rate, 0.3);
  EXPECT_TRUE(cfg.torn_writes);
  EXPECT_TRUE(cfg.byte_reads);
  EXPECT_TRUE(cfg.stalls);
  EXPECT_TRUE(cfg.disconnects);
}

TEST(ServeChaos, FromEnvDefaultsToLossFreeActions) {
  const EnvVar env("AGINGSIM_SERVE_CHAOS", "11:0.5");
  const ServeChaosConfig cfg = ServeChaosConfig::from_env();
  EXPECT_TRUE(cfg.torn_writes);
  EXPECT_TRUE(cfg.byte_reads);
  EXPECT_TRUE(cfg.stalls);
  EXPECT_FALSE(cfg.disconnects) << "'d' must be opt-in: it loses frames";
}

TEST(ServeChaos, FromEnvRejectsMalformedSpecsAsDisabled) {
  const char* bad[] = {"nonsense", "1", "x:0.5", "1:weird", "1:-0.1",
                       "1:1.5", "1:0.5:q", "1:0.5:"};
  for (const char* spec : bad) {
    const EnvVar env("AGINGSIM_SERVE_CHAOS", spec);
    EXPECT_FALSE(ServeChaosConfig::from_env().enabled()) << spec;
  }
}

TEST(ServeChaos, UnsetEnvMeansDisabled) {
  ::unsetenv("AGINGSIM_SERVE_CHAOS");
  EXPECT_FALSE(ServeChaosConfig::from_env().enabled());
}

// --- hook bounds -----------------------------------------------------------

TEST(ServeChaos, HooksStayWithinTheirContracts) {
  ServeChaosConfig cfg;
  cfg.seed = 42;
  cfg.rate = 1.0;  // every draw fires
  cfg.torn_writes = true;
  cfg.byte_reads = true;
  const ChaosGuard guard(cfg);
  for (int i = 0; i < 200; ++i) {
    const std::size_t chunk = chaos_write_chunk(1000);
    EXPECT_GE(chunk, 1u);
    EXPECT_LE(chunk, 8u);
    const std::size_t clamp = chaos_read_clamp(1000);
    EXPECT_GE(clamp, 1u);
    EXPECT_LE(clamp, 3u);
  }
  // Tiny buffers pass through untouched — a 0-byte op would spin forever.
  EXPECT_EQ(chaos_write_chunk(1), 1u);
  EXPECT_EQ(chaos_read_clamp(1), 1u);
  EXPECT_EQ(chaos_write_chunk(0), 0u);
  // Disconnects are off in this config.
  EXPECT_FALSE(chaos_drop_write());
}

TEST(ServeChaos, DisabledHooksArePassthrough) {
  const ChaosGuard guard(ServeChaosConfig{});
  EXPECT_EQ(chaos_write_chunk(12345), 12345u);
  EXPECT_EQ(chaos_read_clamp(12345), 12345u);
  EXPECT_FALSE(chaos_drop_write());
}

// --- transport under chaos -------------------------------------------------

TEST(ServeChaos, LossFreeChaosRoundTripsThroughTheServer) {
  ServeChaosConfig cfg;
  cfg.seed = 7;
  cfg.rate = 1.0;  // maximum torn writes + byte reads on every op
  cfg.torn_writes = true;
  cfg.byte_reads = true;
  const ChaosGuard guard(cfg);

  TempDir dir("lossfree");
  Server server(chaos_server_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connect_unix(server.config().socket_path);
  ASSERT_GE(fd, 0);
  for (int i = 1; i <= 10; ++i) {
    const auto reply = call(
        fd, "{\"id\": " + std::to_string(i) +
                ", \"method\": \"work\", \"params\": {\"spin_us\": 50}}");
    ASSERT_TRUE(reply.has_value()) << "request " << i;
    EXPECT_TRUE(reply->bool_or("ok", false)) << "request " << i;
    EXPECT_EQ(reply->u64_or("id", 0), static_cast<std::uint64_t>(i));
  }
  // A campaign's larger response survives 1..8-byte write chunks too.
  const auto campaign = call(
      fd,
      R"({"id": 99, "method": "campaign",
          "params": {"arch": "cb", "width": 4, "trials": 2, "ops": 64,
                     "sites": 1, "seed": 5}})");
  ASSERT_TRUE(campaign.has_value());
  EXPECT_TRUE(campaign->bool_or("ok", false));
  ::close(fd);

  server.drain();
  server.wait();
}

TEST(ServeChaos, DropWriteAbortsTheFrameMidWrite) {
  // socketpair keeps this in-process and deterministic: the writer draws a
  // chaos disconnect, emits only a prefix and shuts the socket down; the
  // reader sees a truncated stream, never a corrupt frame.
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  ServeChaosConfig cfg;
  cfg.seed = 3;
  cfg.rate = 1.0;  // every frame write draws the disconnect
  cfg.disconnects = true;
  const ChaosGuard guard(cfg);

  std::string error;
  EXPECT_FALSE(write_frame_fd(sv[0], R"({"id": 1})", &error));
  EXPECT_NE(error.find("chaos"), std::string::npos) << error;

  std::string read_error;
  EXPECT_FALSE(read_frame_fd(sv[1], &read_error).has_value());
  ::close(sv[0]);
  ::close(sv[1]);
}

// --- server defences against hostile sockets -------------------------------

TEST(ServeChaos, SlowLorisMidFrameStallIsClosedAtTheReadDeadline) {
  TempDir dir("loris");
  ServerConfig config = chaos_server_config(dir);
  config.read_deadline_ms = 150;
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Send 2 of the 4 length-prefix bytes, then stall forever.
  const int loris = connect_unix(config.socket_path);
  ASSERT_GE(loris, 0);
  const char partial[2] = {0x10, 0x00};
  ASSERT_EQ(::write(loris, partial, 2), 2);

  const steady_clock::time_point t0 = steady_clock::now();
  char buf[16];
  const ssize_t n = ::read(loris, buf, sizeof buf);  // blocks until close
  const auto elapsed = steady_clock::now() - t0;
  EXPECT_LE(n, 0) << "server must close a mid-frame staller";
  EXPECT_LT(elapsed, std::chrono::seconds(5))
      << "read deadline did not fire";
  ::close(loris);

  // The daemon is healthy for well-behaved clients afterwards.
  const int good = connect_unix(config.socket_path);
  ASSERT_GE(good, 0);
  const auto h = call(good, R"({"id": 1, "method": "health"})");
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->bool_or("ok", false));
  ::close(good);

  server.drain();
  server.wait();
}

TEST(ServeChaos, IdleConnectionsAreClosedWhenTimeoutConfigured) {
  TempDir dir("idle");
  ServerConfig config = chaos_server_config(dir);
  config.idle_timeout_ms = 100;
  config.read_deadline_ms = 0;  // isolate the idle path
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connect_unix(config.socket_path);
  ASSERT_GE(fd, 0);
  // One healthy round trip, then silence: the idle timer reaps us.
  const auto h = call(fd, R"({"id": 1, "method": "health"})");
  ASSERT_TRUE(h.has_value());
  char buf[16];
  const steady_clock::time_point t0 = steady_clock::now();
  const ssize_t n = ::read(fd, buf, sizeof buf);
  EXPECT_LE(n, 0);
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(5));
  ::close(fd);

  server.drain();
  server.wait();
}

TEST(ServeChaos, InFlightCapRejectsPipeliningPastTheLimit) {
  TempDir dir("inflight");
  ServerConfig config = chaos_server_config(dir);
  config.max_inflight_per_conn = 1;
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connect_unix(config.socket_path);
  ASSERT_GE(fd, 0);
  // Pipeline two slow requests without reading. The first occupies the
  // connection's single in-flight slot; the second is rejected at the
  // connection, before admission.
  ASSERT_TRUE(write_frame_fd(
      fd, R"({"id": 1, "method": "work", "params": {"spin_us": 300000}})"));
  ASSERT_TRUE(write_frame_fd(
      fd, R"({"id": 2, "method": "work", "params": {"spin_us": 300000}})"));

  bool saw_ok = false;
  bool saw_cap_reject = false;
  for (int i = 0; i < 2; ++i) {
    const auto frame = read_frame_fd(fd);
    ASSERT_TRUE(frame.has_value());
    const auto doc = parse_json(*frame);
    ASSERT_TRUE(doc.has_value());
    if (doc->u64_or("id", 0) == 1) {
      EXPECT_TRUE(doc->bool_or("ok", false));
      saw_ok = true;
    } else {
      EXPECT_EQ(doc->u64_or("id", 0), 2u);
      EXPECT_FALSE(doc->bool_or("ok", true));
      const JsonValue* err = doc->find("error");
      ASSERT_NE(err, nullptr);
      EXPECT_EQ(err->str_or("code", ""), "overloaded");
      EXPECT_GT(err->i64_or("retry_after_ms", 0), 0);
      saw_cap_reject = true;
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_cap_reject);

  // The slot frees once the worker finishes; that decrement lands just
  // after the reply is written, so allow a few retries.
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    const auto again = call(
        fd, R"({"id": 3, "method": "work", "params": {"spin_us": 50}})");
    ASSERT_TRUE(again.has_value());
    if (again->bool_or("ok", false)) {
      recovered = true;
    } else {
      std::this_thread::sleep_for(milliseconds(5));
    }
  }
  EXPECT_TRUE(recovered) << "in-flight slot never freed";
  ::close(fd);

  server.drain();
  server.wait();
}

TEST(ServeChaos, PoisonedStreamClosesOnlyThatConnection) {
  TempDir dir("poison");
  Server server(chaos_server_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // An oversized length prefix poisons the stream; the server closes it.
  const int evil = connect_unix(server.config().socket_path);
  ASSERT_GE(evil, 0);
  const unsigned char prefix[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_EQ(::write(evil, prefix, 4), 4);
  char buf[16];
  EXPECT_LE(::read(evil, buf, sizeof buf), 0);
  ::close(evil);

  const int good = connect_unix(server.config().socket_path);
  ASSERT_GE(good, 0);
  const auto h = call(good, R"({"id": 1, "method": "health"})");
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->bool_or("ok", false));
  ::close(good);

  server.drain();
  server.wait();
}

}  // namespace
}  // namespace agingsim::serve
