// Tests for the agingd wire protocol: framing, envelope validation and
// response builders (src/serve/protocol.hpp).

#include "src/serve/protocol.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/serve/json.hpp"

namespace agingsim::serve {
namespace {

TEST(ServeProtocol, FrameRoundTrip) {
  const std::string payload = R"({"id": 1, "method": "health"})";
  const std::string frame = encode_frame(payload);
  ASSERT_EQ(frame.size(), payload.size() + 4);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(frame));
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ServeProtocol, DecoderHandlesSplitAndCoalescedFrames) {
  const std::string a = encode_frame("\"a\"");
  const std::string b = encode_frame("\"b\"");
  FrameDecoder decoder;
  // Byte-at-a-time delivery of two back-to-back frames.
  const std::string stream = a + b;
  for (const char c : stream) {
    ASSERT_TRUE(decoder.feed(std::string_view(&c, 1)));
  }
  EXPECT_EQ(decoder.next().value(), "\"a\"");
  EXPECT_EQ(decoder.next().value(), "\"b\"");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ServeProtocol, OversizedPrefixPoisonsTheStream) {
  std::string evil(4, '\0');
  evil[3] = 0x7F;  // little-endian length ~2 GiB
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(evil));
  EXPECT_TRUE(decoder.poisoned());
  // A poisoned decoder never yields frames, even for valid follow-up bytes.
  EXPECT_FALSE(decoder.feed(encode_frame("{}")));
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ServeProtocol, EncodeRefusesOversizedPayload) {
  std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_TRUE(encode_frame(huge).empty());
  std::string error;
  EXPECT_FALSE(write_frame_fd(-1, huge, &error));
  EXPECT_EQ(error, "payload exceeds kMaxFrameBytes");
}

TEST(ServeProtocol, ParseRequestValidEnvelope) {
  std::string error;
  const auto req = parse_request(
      R"({"id": 42, "method": "query", "deadline_ms": 500,
          "params": {"width": 8}})",
      &error);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->id, 42u);
  EXPECT_EQ(req->method, "query");
  EXPECT_EQ(req->priority, Priority::kNormal);
  EXPECT_EQ(req->deadline_ms, 500);
  EXPECT_EQ(req->params.i64_or("width", 0), 8);
}

TEST(ServeProtocol, MethodPriorityClasses) {
  EXPECT_EQ(method_priority("health"), Priority::kControl);
  EXPECT_EQ(method_priority("status"), Priority::kControl);
  EXPECT_EQ(method_priority("metrics"), Priority::kControl);
  EXPECT_EQ(method_priority("shutdown"), Priority::kControl);
  EXPECT_EQ(method_priority("query"), Priority::kNormal);
  EXPECT_EQ(method_priority("work"), Priority::kNormal);
  EXPECT_EQ(method_priority("campaign"), Priority::kBatch);
}

TEST(ServeProtocol, ParseRequestRejectsBadEnvelopes) {
  const char* bad[] = {
      "not json at all",
      "[]",                                  // not an object
      R"({"id": 1})",                        // missing method
      R"({"id": 1, "method": "nope"})",      // unknown method
      R"({"id": 1, "method": 7})",           // method not a string
      R"({"id": 1, "method": "query", "deadline_ms": -5})",
      R"({"id": 1, "method": "health", "params": []})",  // params not object
  };
  for (const char* payload : bad) {
    std::string error;
    EXPECT_FALSE(parse_request(payload, &error).has_value()) << payload;
    // The error body is a ready-to-send bad_request response.
    const auto doc = parse_json(error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_FALSE(doc->bool_or("ok", true));
    const JsonValue* err = doc->find("error");
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->str_or("code", ""), "bad_request");
  }
}

TEST(ServeProtocol, ResponseBuilders) {
  const std::string ok = ok_response(7, R"({"x": 1})");
  const auto ok_doc = parse_json(ok);
  ASSERT_TRUE(ok_doc.has_value());
  EXPECT_EQ(ok_doc->u64_or("id", 0), 7u);
  EXPECT_TRUE(ok_doc->bool_or("ok", false));
  ASSERT_NE(ok_doc->find("result"), nullptr);
  EXPECT_EQ(ok_doc->find("result")->i64_or("x", 0), 1);

  const std::string err =
      error_response(8, ErrorCode::kOverloaded, "queue full", 40);
  const auto err_doc = parse_json(err);
  ASSERT_TRUE(err_doc.has_value());
  EXPECT_FALSE(err_doc->bool_or("ok", true));
  const JsonValue* e = err_doc->find("error");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->str_or("code", ""), "overloaded");
  EXPECT_EQ(e->str_or("message", ""), "queue full");
  EXPECT_EQ(e->i64_or("retry_after_ms", -1), 40);
}

TEST(ServeProtocol, ErrorMessagesAreJsonEscaped) {
  const std::string err = error_response(
      1, ErrorCode::kInternal, "quote \" backslash \\ newline \n done");
  const auto doc = parse_json(err);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("error")->str_or("message", ""),
            "quote \" backslash \\ newline \n done");
}

// --- adversarial decoder input ---------------------------------------------

TEST(ServeProtocol, DecoderTornLengthPrefix) {
  // The 4 header bytes arrive one at a time across feeds; no frame until
  // the payload completes, and mid_frame() holds from the first byte on.
  const std::string frame = encode_frame("\"torn\"");
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.mid_frame());
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(decoder.feed(std::string_view(frame.data() + i, 1)));
    EXPECT_TRUE(decoder.mid_frame());
    EXPECT_FALSE(decoder.next().has_value());
  }
  ASSERT_TRUE(decoder.feed(std::string_view(frame).substr(4)));
  EXPECT_EQ(decoder.next().value(), "\"torn\"");
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(ServeProtocol, DecoderMaxFrameBoundary) {
  // Exactly kMaxFrameBytes is legal and round-trips.
  const std::string max_payload(kMaxFrameBytes, 'x');
  FrameDecoder ok;
  ASSERT_TRUE(ok.feed(encode_frame(max_payload)));
  const auto out = ok.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), kMaxFrameBytes);

  // kMaxFrameBytes + 1 poisons the moment the 4th header byte lands —
  // regardless of how the header was torn across feeds.
  for (std::size_t split = 0; split < 4; ++split) {
    std::string evil(4, '\0');
    const std::uint32_t len = kMaxFrameBytes + 1;
    std::memcpy(evil.data(), &len, 4);
    FrameDecoder poisoned;
    if (split > 0) {
      ASSERT_TRUE(poisoned.feed(std::string_view(evil.data(), split)))
          << "split " << split;
      EXPECT_TRUE(poisoned.mid_frame()) << "split " << split;
    }
    EXPECT_FALSE(
        poisoned.feed(std::string_view(evil.data() + split, 4 - split)))
        << "split " << split;
    EXPECT_TRUE(poisoned.poisoned()) << "split " << split;
  }
}

TEST(ServeProtocol, DecoderPoisonIsPermanent) {
  std::string evil(4, '\xFF');  // length 0xFFFFFFFF
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(evil));
  ASSERT_TRUE(decoder.poisoned());
  // Any amount of perfectly valid follow-up traffic stays dead.
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(decoder.feed(encode_frame("{}")));
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_TRUE(decoder.poisoned());
  }
}

TEST(ServeProtocol, DecoderEmptyPayloadFrames) {
  // A zero-length payload is a legal frame, even back to back.
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(encode_frame("") + encode_frame("")));
  EXPECT_EQ(decoder.next().value(), "");
  EXPECT_EQ(decoder.next().value(), "");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ServeProtocol, DecoderSeededFuzzRandomChunking) {
  // Deterministic fuzz: random payload sizes fed in random chunk sizes
  // must reproduce every payload, in order, with no leftover bytes.
  std::uint64_t state = 0x5EEDu;
  const auto rnd = [&state] {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  std::vector<std::string> payloads;
  std::string stream;
  for (int i = 0; i < 64; ++i) {
    std::string p(rnd() % 300, char('a' + i % 26));
    payloads.push_back(p);
    stream += encode_frame(p);
  }
  FrameDecoder decoder;
  std::vector<std::string> got;
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rnd() % 7, stream.size() - off);
    ASSERT_TRUE(decoder.feed(std::string_view(stream).substr(off, n)));
    off += n;
    while (auto f = decoder.next()) got.push_back(std::move(*f));
  }
  EXPECT_EQ(got, payloads);
  EXPECT_FALSE(decoder.mid_frame());
  EXPECT_EQ(decoder.buffered(), 0u);
}

// --- client identity and streaming frames ----------------------------------

TEST(ServeProtocol, ValidClientId) {
  EXPECT_TRUE(valid_client_id("ci-paced"));
  EXPECT_TRUE(valid_client_id("A.b_c-9"));
  EXPECT_TRUE(valid_client_id(std::string(64, 'x')));
  EXPECT_FALSE(valid_client_id(""));
  EXPECT_FALSE(valid_client_id(std::string(65, 'x')));
  EXPECT_FALSE(valid_client_id("has space"));
  EXPECT_FALSE(valid_client_id("quote\""));
  EXPECT_FALSE(valid_client_id("new\nline"));
}

TEST(ServeProtocol, ParseRequestClientId) {
  std::string error;
  const auto req = parse_request(
      R"({"id": 1, "method": "work", "client_id": "ci-a"})", &error);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->client_id, "ci-a");
  // Absent client_id stays empty (connection identity takes over).
  const auto anon =
      parse_request(R"({"id": 2, "method": "work"})", &error);
  ASSERT_TRUE(anon.has_value());
  EXPECT_TRUE(anon->client_id.empty());
  // Malformed identities are bad_request, not silently accepted.
  EXPECT_FALSE(parse_request(
                   R"({"id": 3, "method": "work", "client_id": ""})", &error)
                   .has_value());
  EXPECT_FALSE(parse_request(
                   R"({"id": 4, "method": "work", "client_id": 7})", &error)
                   .has_value());
}

TEST(ServeProtocol, StreamFrameShape) {
  const std::string frame = stream_frame(7, 3, 3, 9, R"({"x": 1})");
  const auto doc = parse_json(frame);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->u64_or("id", 0), 7u);
  EXPECT_EQ(doc->u64_or("stream", 0), 3u);
  EXPECT_EQ(doc->u64_or("units_done", 0), 3u);
  EXPECT_EQ(doc->u64_or("units_total", 0), 9u);
  ASSERT_NE(doc->find("partial_stats"), nullptr);
  EXPECT_EQ(doc->find("partial_stats")->i64_or("x", 0), 1);
  // The discriminator clients rely on: progress frames carry "stream",
  // final responses never do.
  EXPECT_EQ(parse_json(ok_response(7, "{}"))->find("stream"), nullptr);
}

}  // namespace
}  // namespace agingsim::serve
