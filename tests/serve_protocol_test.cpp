// Tests for the agingd wire protocol: framing, envelope validation and
// response builders (src/serve/protocol.hpp).

#include "src/serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "src/serve/json.hpp"

namespace agingsim::serve {
namespace {

TEST(ServeProtocol, FrameRoundTrip) {
  const std::string payload = R"({"id": 1, "method": "health"})";
  const std::string frame = encode_frame(payload);
  ASSERT_EQ(frame.size(), payload.size() + 4);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(frame));
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ServeProtocol, DecoderHandlesSplitAndCoalescedFrames) {
  const std::string a = encode_frame("\"a\"");
  const std::string b = encode_frame("\"b\"");
  FrameDecoder decoder;
  // Byte-at-a-time delivery of two back-to-back frames.
  const std::string stream = a + b;
  for (const char c : stream) {
    ASSERT_TRUE(decoder.feed(std::string_view(&c, 1)));
  }
  EXPECT_EQ(decoder.next().value(), "\"a\"");
  EXPECT_EQ(decoder.next().value(), "\"b\"");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ServeProtocol, OversizedPrefixPoisonsTheStream) {
  std::string evil(4, '\0');
  evil[3] = 0x7F;  // little-endian length ~2 GiB
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(evil));
  EXPECT_TRUE(decoder.poisoned());
  // A poisoned decoder never yields frames, even for valid follow-up bytes.
  EXPECT_FALSE(decoder.feed(encode_frame("{}")));
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ServeProtocol, EncodeRefusesOversizedPayload) {
  std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_TRUE(encode_frame(huge).empty());
  std::string error;
  EXPECT_FALSE(write_frame_fd(-1, huge, &error));
  EXPECT_EQ(error, "payload exceeds kMaxFrameBytes");
}

TEST(ServeProtocol, ParseRequestValidEnvelope) {
  std::string error;
  const auto req = parse_request(
      R"({"id": 42, "method": "query", "deadline_ms": 500,
          "params": {"width": 8}})",
      &error);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->id, 42u);
  EXPECT_EQ(req->method, "query");
  EXPECT_EQ(req->priority, Priority::kNormal);
  EXPECT_EQ(req->deadline_ms, 500);
  EXPECT_EQ(req->params.i64_or("width", 0), 8);
}

TEST(ServeProtocol, MethodPriorityClasses) {
  EXPECT_EQ(method_priority("health"), Priority::kControl);
  EXPECT_EQ(method_priority("status"), Priority::kControl);
  EXPECT_EQ(method_priority("metrics"), Priority::kControl);
  EXPECT_EQ(method_priority("shutdown"), Priority::kControl);
  EXPECT_EQ(method_priority("query"), Priority::kNormal);
  EXPECT_EQ(method_priority("work"), Priority::kNormal);
  EXPECT_EQ(method_priority("campaign"), Priority::kBatch);
}

TEST(ServeProtocol, ParseRequestRejectsBadEnvelopes) {
  const char* bad[] = {
      "not json at all",
      "[]",                                  // not an object
      R"({"id": 1})",                        // missing method
      R"({"id": 1, "method": "nope"})",      // unknown method
      R"({"id": 1, "method": 7})",           // method not a string
      R"({"id": 1, "method": "query", "deadline_ms": -5})",
      R"({"id": 1, "method": "health", "params": []})",  // params not object
  };
  for (const char* payload : bad) {
    std::string error;
    EXPECT_FALSE(parse_request(payload, &error).has_value()) << payload;
    // The error body is a ready-to-send bad_request response.
    const auto doc = parse_json(error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_FALSE(doc->bool_or("ok", true));
    const JsonValue* err = doc->find("error");
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->str_or("code", ""), "bad_request");
  }
}

TEST(ServeProtocol, ResponseBuilders) {
  const std::string ok = ok_response(7, R"({"x": 1})");
  const auto ok_doc = parse_json(ok);
  ASSERT_TRUE(ok_doc.has_value());
  EXPECT_EQ(ok_doc->u64_or("id", 0), 7u);
  EXPECT_TRUE(ok_doc->bool_or("ok", false));
  ASSERT_NE(ok_doc->find("result"), nullptr);
  EXPECT_EQ(ok_doc->find("result")->i64_or("x", 0), 1);

  const std::string err =
      error_response(8, ErrorCode::kOverloaded, "queue full", 40);
  const auto err_doc = parse_json(err);
  ASSERT_TRUE(err_doc.has_value());
  EXPECT_FALSE(err_doc->bool_or("ok", true));
  const JsonValue* e = err_doc->find("error");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->str_or("code", ""), "overloaded");
  EXPECT_EQ(e->str_or("message", ""), "queue full");
  EXPECT_EQ(e->i64_or("retry_after_ms", -1), 40);
}

TEST(ServeProtocol, ErrorMessagesAreJsonEscaped) {
  const std::string err = error_response(
      1, ErrorCode::kInternal, "quote \" backslash \\ newline \n done");
  const auto doc = parse_json(err);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("error")->str_or("message", ""),
            "quote \" backslash \\ newline \n done");
}

}  // namespace
}  // namespace agingsim::serve
