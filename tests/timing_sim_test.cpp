#include "src/sim/timing_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/multiplier/multiplier.hpp"
#include "src/netlist/builder.hpp"
#include "src/sim/sta.hpp"
#include "src/workload/patterns.hpp"

namespace agingsim {
namespace {

std::vector<Logic> bits(std::initializer_list<int> values) {
  std::vector<Logic> out;
  for (int v : values) out.push_back(logic_from_bool(v != 0));
  return out;
}

TEST(TimingSimTest, StableInputsProduceNoEvents) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId y = nb.and2(a, b);
  nb.netlist().mark_output(y, "y");
  TimingSim sim(nb.netlist(), default_tech_library());
  sim.step(bits({1, 1}));
  const StepResult r = sim.step(bits({1, 1}));  // identical pattern
  EXPECT_EQ(r.toggles, 0u);
  EXPECT_DOUBLE_EQ(r.output_settle_ps, 0.0);
  EXPECT_DOUBLE_EQ(r.switched_cap_ff, 0.0);
}

TEST(TimingSimTest, ControllingZeroSettlesEarly) {
  // slow = INV^5(a); y = AND(slow, b). Falling b kills the AND immediately;
  // the slow path is irrelevant for that transition.
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  NetId slow = a;
  for (int i = 0; i < 5; ++i) slow = nb.inv(slow);
  const NetId y = nb.and2(slow, b);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  TimingSim sim(nb.netlist(), t);

  sim.step(bits({0, 1}));  // slow=INV^5(0)=1, y=1
  ASSERT_EQ(sim.value(y), Logic::kOne);
  // a rises (slow will fall late) and b falls (kills output now).
  const StepResult r = sim.step(bits({1, 0}));
  EXPECT_EQ(sim.value(y), Logic::kZero);
  EXPECT_DOUBLE_EQ(r.output_settle_ps, t.delay(CellKind::kAnd2));
  // But internal nets settle later than the output.
  EXPECT_GT(r.settle_ps, r.output_settle_ps);
}

TEST(TimingSimTest, NonControllingSettleWaitsForSlowestChangedInput) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId slow = nb.inv(nb.inv(a));
  const NetId y = nb.and2(slow, b);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  TimingSim sim(nb.netlist(), t);
  sim.step(bits({0, 1}));  // slow=0 => y=0
  const StepResult r = sim.step(bits({1, 1}));  // slow rises late, y -> 1
  EXPECT_EQ(sim.value(y), Logic::kOne);
  EXPECT_DOUBLE_EQ(r.output_settle_ps,
                   2.0 * t.delay(CellKind::kInv) + t.delay(CellKind::kAnd2));
}

TEST(TimingSimTest, TbufHoldsValueAndSuppressesActivity) {
  NetlistBuilder nb;
  const NetId d = nb.input("d");
  const NetId en = nb.input("en");
  const NetId y = nb.tbuf(d, en);
  nb.netlist().mark_output(y, "y");
  TimingSim sim(nb.netlist(), default_tech_library());
  sim.step(bits({1, 1}));
  EXPECT_EQ(sim.value(y), Logic::kOne);
  // Disable, then wiggle d: output holds 1, no gate toggles.
  sim.step(bits({1, 0}));
  EXPECT_EQ(sim.value(y), Logic::kOne);
  const StepResult r = sim.step(bits({0, 0}));
  EXPECT_EQ(sim.value(y), Logic::kOne);
  EXPECT_EQ(r.toggles, 0u);
  // Re-enable: output follows d again.
  sim.step(bits({0, 1}));
  EXPECT_EQ(sim.value(y), Logic::kZero);
}

TEST(TimingSimTest, MuxPropagatesOnlySelectedDataPath) {
  NetlistBuilder nb;
  const NetId d0 = nb.input("d0");
  const NetId d1 = nb.input("d1");
  const NetId sel = nb.input("sel");
  const NetId slow1 = nb.inv(nb.inv(d1));  // d1 path is slow
  const NetId y = nb.mux2(d0, slow1, sel);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  TimingSim sim(nb.netlist(), t);
  sim.step(bits({0, 0, 0}));  // y = d0 = 0
  // Toggle only d0 while selected: arrival is just the MUX delay.
  const StepResult r = sim.step(bits({1, 0, 0}));
  EXPECT_EQ(sim.value(y), Logic::kOne);
  EXPECT_DOUBLE_EQ(r.output_settle_ps, t.delay(CellKind::kMux2));
  // Toggling the unselected slow path leaves the output silent.
  const StepResult r2 = sim.step(bits({1, 1, 0}));
  EXPECT_DOUBLE_EQ(r2.output_settle_ps, 0.0);
}

TEST(TimingSimTest, OutputBitsPacksLsbFirst) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  nb.netlist().mark_output(a, "p[0]");
  nb.netlist().mark_output(b, "p[1]");
  TimingSim sim(nb.netlist(), default_tech_library());
  sim.step(bits({1, 0}));
  EXPECT_EQ(sim.output_bits(), 0b01u);
  sim.step(bits({0, 1}));
  EXPECT_EQ(sim.output_bits(), 0b10u);
}

TEST(TimingSimTest, OutputBitsRejectsUnknownOutputs) {
  NetlistBuilder nb;
  const NetId d = nb.input("d");
  const NetId en = nb.input("en");
  nb.netlist().mark_output(nb.tbuf(d, en), "y");
  TimingSim sim(nb.netlist(), default_tech_library());
  // Disabled from power-up: the keeper net has never been driven.
  sim.step(bits({1, 0}));
  EXPECT_THROW(sim.output_bits(), std::logic_error);
}

TEST(TimingSimTest, RejectsWrongInputCount) {
  NetlistBuilder nb;
  nb.input("a");
  TimingSim sim(nb.netlist(), default_tech_library());
  EXPECT_THROW(sim.step(bits({1, 0})), std::invalid_argument);
}

TEST(TimingSimTest, RejectsBadAgingOverlay) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  nb.netlist().mark_output(nb.inv(a), "y");
  const std::vector<double> wrong = {1.0, 2.0, 3.0};
  EXPECT_THROW(TimingSim(nb.netlist(), default_tech_library(), wrong),
               std::invalid_argument);
}

// Property: per-pattern sensitized settle time never exceeds the STA bound,
// on a real multiplier with random patterns.
TEST(TimingSimTest, SensitizedDelayBoundedBySta) {
  const MultiplierNetlist m = build_column_bypass_multiplier(8);
  const TechLibrary& t = default_tech_library();
  const double sta = run_sta(m.netlist, t).critical_path_ps;
  MultiplierSim sim(m, t);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const StepResult r = sim.apply(rng.next_bits(8), rng.next_bits(8));
    EXPECT_LE(r.output_settle_ps, sta + 1e-9);
  }
}

// Property: aging monotonicity — uniformly slower gates never settle sooner.
TEST(TimingSimTest, AgedCircuitIsSlower) {
  const MultiplierNetlist m = build_array_multiplier(8);
  const TechLibrary& t = default_tech_library();
  MultiplierSim fresh(m, t);
  const std::vector<double> scales(m.netlist.num_gates(), 1.2);
  MultiplierSim aged(m, t, scales);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_bits(8), b = rng.next_bits(8);
    const StepResult rf = fresh.apply(a, b);
    const StepResult ra = aged.apply(a, b);
    EXPECT_NEAR(ra.output_settle_ps, 1.2 * rf.output_settle_ps, 1e-6);
  }
}

}  // namespace
}  // namespace agingsim
