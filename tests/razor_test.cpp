#include "src/core/razor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace agingsim {
namespace {

TEST(RazorTest, ViolationIsStrictlyPastThePeriod) {
  EXPECT_FALSE(RazorBank::violation(899.9, 900.0));
  EXPECT_FALSE(RazorBank::violation(900.0, 900.0));
  EXPECT_TRUE(RazorBank::violation(900.1, 900.0));
}

TEST(RazorTest, DetectableWithinShadowWindow) {
  RazorBank razor(RazorConfig{.shadow_window_cycles = 1.0,
                              .reexec_penalty_cycles = 3});
  // Detectable up to 2T with a full-period shadow window.
  EXPECT_TRUE(razor.detectable(1500.0, 900.0));
  EXPECT_TRUE(razor.detectable(1800.0, 900.0));
  EXPECT_FALSE(razor.detectable(1800.1, 900.0));
}

TEST(RazorTest, NarrowShadowWindow) {
  RazorBank razor(RazorConfig{.shadow_window_cycles = 0.5,
                              .reexec_penalty_cycles = 3});
  EXPECT_TRUE(razor.detectable(1300.0, 900.0));
  EXPECT_FALSE(razor.detectable(1400.0, 900.0));
}

TEST(RazorTest, BoundaryAtExactlyThePeriodAndShadowWindowEdge) {
  // delay == T is *not* a violation (the main flip-flop samples the settled
  // value exactly at the edge); delay == T*(1+w) is still detectable (the
  // shadow latch samples at the end of its window), one ulp past is not.
  const double period = 900.0;
  RazorBank razor(RazorConfig{.shadow_window_cycles = 1.0,
                              .reexec_penalty_cycles = 3});
  EXPECT_FALSE(RazorBank::violation(period, period));
  EXPECT_TRUE(RazorBank::violation(std::nextafter(period, 2 * period), period));
  const double edge = period * (1.0 + razor.config().shadow_window_cycles);
  EXPECT_TRUE(razor.detectable(edge, period));
  EXPECT_FALSE(razor.detectable(std::nextafter(edge, 2 * edge), period));
  // At the exact shadow-window edge a violation is detected with certainty.
  EXPECT_DOUBLE_EQ(razor.detection_probability(edge, period), 1.0);
}

TEST(RazorTest, DefaultDetectionProbabilityIsTheHardCutoff) {
  // Metastability window 0 (the seed behaviour): every in-window violation
  // is detected with probability exactly 1, everything past is 0.
  RazorBank razor(RazorConfig{});
  const double period = 900.0;
  EXPECT_DOUBLE_EQ(razor.detection_probability(900.1, period), 1.0);
  EXPECT_DOUBLE_EQ(razor.detection_probability(1800.0, period), 1.0);
  EXPECT_DOUBLE_EQ(razor.detection_probability(1800.1, period), 0.0);
}

TEST(RazorTest, MetastabilityWindowRampsUpFromTheEdge) {
  RazorBank razor(RazorConfig{.metastability_window_ps = 100.0,
                              .edge_escape_prob = 0.5});
  const double period = 900.0;
  // At the clock edge: escape probability 0.5 -> detection 0.5; linear ramp
  // to certainty at the end of the metastability window.
  EXPECT_NEAR(razor.detection_probability(period + 1e-9, period), 0.5, 1e-6);
  EXPECT_DOUBLE_EQ(razor.detection_probability(period + 50.0, period), 0.75);
  EXPECT_DOUBLE_EQ(razor.detection_probability(period + 100.0, period), 1.0);
  EXPECT_DOUBLE_EQ(razor.detection_probability(period + 500.0, period), 1.0);
  // Past the shadow window the shadow latch itself is wrong: probability 0.
  EXPECT_DOUBLE_EQ(razor.detection_probability(2 * period + 1.0, period), 0.0);
}

TEST(RazorTest, PenaltyIsConfigurable) {
  RazorBank razor(RazorConfig{.shadow_window_cycles = 1.0,
                              .reexec_penalty_cycles = 5});
  EXPECT_EQ(razor.reexec_penalty_cycles(), 5);
  EXPECT_DOUBLE_EQ(razor.config().shadow_window_cycles, 1.0);
}

}  // namespace
}  // namespace agingsim
