#include "src/core/razor.hpp"

#include <gtest/gtest.h>

namespace agingsim {
namespace {

TEST(RazorTest, ViolationIsStrictlyPastThePeriod) {
  EXPECT_FALSE(RazorBank::violation(899.9, 900.0));
  EXPECT_FALSE(RazorBank::violation(900.0, 900.0));
  EXPECT_TRUE(RazorBank::violation(900.1, 900.0));
}

TEST(RazorTest, DetectableWithinShadowWindow) {
  RazorBank razor(RazorConfig{.shadow_window_cycles = 1.0,
                              .reexec_penalty_cycles = 3});
  // Detectable up to 2T with a full-period shadow window.
  EXPECT_TRUE(razor.detectable(1500.0, 900.0));
  EXPECT_TRUE(razor.detectable(1800.0, 900.0));
  EXPECT_FALSE(razor.detectable(1800.1, 900.0));
}

TEST(RazorTest, NarrowShadowWindow) {
  RazorBank razor(RazorConfig{.shadow_window_cycles = 0.5,
                              .reexec_penalty_cycles = 3});
  EXPECT_TRUE(razor.detectable(1300.0, 900.0));
  EXPECT_FALSE(razor.detectable(1400.0, 900.0));
}

TEST(RazorTest, PenaltyIsConfigurable) {
  RazorBank razor(RazorConfig{.shadow_window_cycles = 1.0,
                              .reexec_penalty_cycles = 5});
  EXPECT_EQ(razor.reexec_penalty_cycles(), 5);
  EXPECT_DOUBLE_EQ(razor.config().shadow_window_cycles, 1.0);
}

}  // namespace
}  // namespace agingsim
