#include "src/netlist/techlib.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace agingsim {
namespace {

TEST(TechLibTest, DefaultLibraryIsSane) {
  const TechLibrary& t = default_tech_library();
  for (int k = 0; k < kNumCellKinds; ++k) {
    const auto kind = static_cast<CellKind>(k);
    EXPECT_GE(t.delay(kind), 0.0);
    EXPECT_GE(t.cap(kind), 0.0);
  }
  // Tie cells are sources: no propagation delay.
  EXPECT_EQ(t.delay(CellKind::kTie0), 0.0);
  EXPECT_EQ(t.delay(CellKind::kTie1), 0.0);
  // Inverting gates are faster than their complex counterparts.
  EXPECT_LT(t.delay(CellKind::kNand2), t.delay(CellKind::kXor2));
  EXPECT_LT(t.delay(CellKind::kInv), t.delay(CellKind::kMux2));
  EXPECT_GT(t.vdd_v, t.vth0_v);
}

TEST(TechLibTest, ScalingMultipliesDelaysOnly) {
  const TechLibrary& t = default_tech_library();
  const TechLibrary s = t.scaled(2.0);
  EXPECT_DOUBLE_EQ(s.delay(CellKind::kXor2), 2.0 * t.delay(CellKind::kXor2));
  EXPECT_DOUBLE_EQ(s.cap(CellKind::kXor2), t.cap(CellKind::kXor2));
  EXPECT_DOUBLE_EQ(s.vdd_v, t.vdd_v);
  EXPECT_THROW(t.scaled(0.0), std::invalid_argument);
  EXPECT_THROW(t.scaled(-1.0), std::invalid_argument);
}

TEST(TechLibTest, DelayScaleFromDvthIsMonotoneAndAnchored) {
  const TechLibrary& t = default_tech_library();
  EXPECT_DOUBLE_EQ(delay_scale_from_dvth(t, 0.0), 1.0);
  const double s1 = delay_scale_from_dvth(t, 0.02);
  const double s2 = delay_scale_from_dvth(t, 0.05);
  EXPECT_GT(s1, 1.0);
  EXPECT_GT(s2, s1);
  // A dVth consuming the whole overdrive is rejected.
  EXPECT_THROW(delay_scale_from_dvth(t, t.vdd_v - t.vth0_v),
               std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
