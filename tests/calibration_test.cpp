#include "src/core/calibration.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/multiplier/multiplier.hpp"
#include "src/sim/sta.hpp"

namespace agingsim {
namespace {

TEST(CalibrationTest, Cb16CriticalPathHitsTarget) {
  const TechLibrary tech = calibrated_tech_library(1880.0);
  const auto cb16 = build_column_bypass_multiplier(16);
  EXPECT_NEAR(run_sta(cb16.netlist, tech).critical_path_ps, 1880.0, 1e-6);
}

TEST(CalibrationTest, ScaleIsConsistent) {
  const double s = calibration_scale(1880.0);
  EXPECT_GT(s, 0.0);
  EXPECT_NEAR(calibration_scale(3760.0), 2.0 * s, 1e-9);
}

TEST(CalibrationTest, ArchitectureOrderingSurvivesCalibration) {
  const TechLibrary tech = calibrated_tech_library();
  const double am =
      run_sta(build_array_multiplier(16).netlist, tech).critical_path_ps;
  const double cb = run_sta(build_column_bypass_multiplier(16).netlist, tech)
                        .critical_path_ps;
  EXPECT_LT(am, cb);  // the AM is the fastest fixed design, as in Fig. 5
}

TEST(CalibrationTest, RejectsBadTarget) {
  EXPECT_THROW(calibrated_tech_library(0.0), std::invalid_argument);
  EXPECT_THROW(calibration_scale(-5.0), std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
