// Tests for agingd admission control: the tier ladder, retry-after hints
// and the bounded priority queue (src/serve/admission.hpp).

#include "src/serve/admission.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

namespace agingsim::serve {
namespace {

AdmissionConfig small_config() {
  AdmissionConfig c;
  c.capacity = 10;
  c.shed_refill_frac = 0.5;
  c.shed_batch_frac = 0.8;
  return c;
}

TEST(ServeAdmission, TierLadder) {
  const AdmissionConfig c = small_config();
  EXPECT_EQ(degradation_tier(c, 0), 0);
  EXPECT_EQ(degradation_tier(c, 4), 0);
  EXPECT_EQ(degradation_tier(c, 5), 1);   // >= 50%
  EXPECT_EQ(degradation_tier(c, 7), 1);
  EXPECT_EQ(degradation_tier(c, 8), 2);   // >= 80%
  EXPECT_EQ(degradation_tier(c, 10), 2);
}

TEST(ServeAdmission, Tier0AdmitsEverything) {
  const AdmissionConfig c = small_config();
  EXPECT_TRUE(admit(c, Priority::kNormal, false, 0, 1.0).admitted);
  EXPECT_TRUE(admit(c, Priority::kNormal, true, 0, 1.0).admitted);
  EXPECT_TRUE(admit(c, Priority::kBatch, false, 0, 1.0).admitted);
}

TEST(ServeAdmission, Tier1ShedsCacheRefillsOnly) {
  const AdmissionConfig c = small_config();
  const std::size_t depth = 5;  // tier 1
  EXPECT_TRUE(admit(c, Priority::kNormal, false, depth, 1.0).admitted);
  const AdmissionDecision refill =
      admit(c, Priority::kNormal, true, depth, 1.0);
  EXPECT_FALSE(refill.admitted);
  EXPECT_EQ(refill.reason, ErrorCode::kShedRefill);
  // Batch still flows at tier 1.
  EXPECT_TRUE(admit(c, Priority::kBatch, false, depth, 1.0).admitted);
}

TEST(ServeAdmission, Tier2RejectsBatch) {
  const AdmissionConfig c = small_config();
  const std::size_t depth = 8;  // tier 2
  EXPECT_TRUE(admit(c, Priority::kNormal, false, depth, 1.0).admitted);
  const AdmissionDecision batch =
      admit(c, Priority::kBatch, false, depth, 1.0);
  EXPECT_FALSE(batch.admitted);
  EXPECT_EQ(batch.reason, ErrorCode::kShedBatch);
}

TEST(ServeAdmission, FullQueueRejectsEverything) {
  const AdmissionConfig c = small_config();
  for (const Priority p : {Priority::kNormal, Priority::kBatch}) {
    const AdmissionDecision d = admit(c, p, false, c.capacity, 1.0);
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reason, ErrorCode::kOverloaded);
    EXPECT_GE(d.retry_after_ms, c.retry_after_min_ms);
  }
}

TEST(ServeAdmission, RetryAfterScalesWithBacklogAndClamps) {
  const AdmissionConfig c = small_config();
  const auto hint = [&](double avg_ms) {
    return admit(c, Priority::kNormal, false, c.capacity, avg_ms)
        .retry_after_ms;
  };
  EXPECT_EQ(hint(0.0), c.retry_after_min_ms);     // no estimate yet: floor
  EXPECT_GE(hint(50.0), hint(5.0));               // slower service: longer
  EXPECT_EQ(hint(1e9), c.retry_after_max_ms);     // clamped at the ceiling
}

TEST(ServeAdmission, QueueNormalPopsBeforeBatch) {
  AdmissionQueue<int> q(small_config());
  EXPECT_TRUE(q.try_push(1, Priority::kBatch, false).admitted);
  EXPECT_TRUE(q.try_push(2, Priority::kNormal, false).admitted);
  EXPECT_TRUE(q.try_push(3, Priority::kBatch, false).admitted);
  EXPECT_TRUE(q.try_push(4, Priority::kNormal, false).admitted);
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.pop().value(), 2);  // normals first, FIFO among themselves
  EXPECT_EQ(q.pop().value(), 4);
  EXPECT_EQ(q.pop().value(), 1);  // then batch, FIFO
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(ServeAdmission, ClosedQueueRejectsWithDrainingAndDrainsBacklog) {
  AdmissionQueue<int> q(small_config());
  EXPECT_TRUE(q.try_push(1, Priority::kNormal, false).admitted);
  q.close();
  const AdmissionDecision d = q.try_push(2, Priority::kNormal, false);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, ErrorCode::kDraining);
  // The backlog is still served, then pop() signals shutdown.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(ServeAdmission, PopBlocksUntilPushOrClose) {
  AdmissionQueue<int> q(small_config());
  std::optional<int> got;
  std::thread consumer([&] { got = q.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(q.try_push(9, Priority::kNormal, false).admitted);
  consumer.join();
  EXPECT_EQ(got.value(), 9);

  std::thread blocked([&] { got = q.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  blocked.join();
  EXPECT_FALSE(got.has_value());
}

TEST(ServeAdmission, ServiceTimeEwmaFeedsHint) {
  AdmissionQueue<int> q(small_config());
  EXPECT_DOUBLE_EQ(q.avg_service_ms(), 0.0);
  q.record_service_ms(100.0);
  EXPECT_DOUBLE_EQ(q.avg_service_ms(), 100.0);  // first sample seeds
  q.record_service_ms(0.0);
  EXPECT_NEAR(q.avg_service_ms(), 80.0, 1e-9);  // alpha = 0.2
}

// --- tier-transition edges -------------------------------------------------

TEST(ServeAdmission, TierBoundariesAreInclusive) {
  // Exactly 50% and exactly 80% occupancy land *in* the higher tier: the
  // thresholds are >=, not >.
  const AdmissionConfig c = small_config();  // capacity 10
  EXPECT_EQ(degradation_tier(c, 5), 1);      // 5/10 == shed_refill_frac
  EXPECT_EQ(degradation_tier(c, 8), 2);      // 8/10 == shed_batch_frac
  EXPECT_FALSE(admit(c, Priority::kNormal, true, 5, 1.0).admitted);
  EXPECT_FALSE(admit(c, Priority::kBatch, false, 8, 1.0).admitted);
  // One below each threshold stays in the lower tier.
  EXPECT_TRUE(admit(c, Priority::kNormal, true, 4, 1.0).admitted);
  EXPECT_TRUE(admit(c, Priority::kBatch, false, 7, 1.0).admitted);
}

TEST(ServeAdmission, TierBoundariesWithOddCapacity) {
  // Non-integer fractional thresholds: capacity 7, 50% = 3.5 requests.
  AdmissionConfig c = small_config();
  c.capacity = 7;
  EXPECT_EQ(degradation_tier(c, 3), 0);  // 3/7 ≈ 0.43 < 0.5
  EXPECT_EQ(degradation_tier(c, 4), 1);  // 4/7 ≈ 0.57 >= 0.5
  EXPECT_EQ(degradation_tier(c, 5), 1);  // 5/7 ≈ 0.71 < 0.8
  EXPECT_EQ(degradation_tier(c, 6), 2);  // 6/7 ≈ 0.86 >= 0.8
}

TEST(ServeAdmission, RetryAfterClampEdges) {
  // The clamp bounds are [10 ms, 2 s] by default, hit exactly.
  const AdmissionConfig c = small_config();
  EXPECT_EQ(c.retry_after_min_ms, 10);
  EXPECT_EQ(c.retry_after_max_ms, 2000);
  // depth * avg below the floor: the floor stands.
  EXPECT_EQ(admit(c, Priority::kNormal, false, c.capacity, 0.5)
                .retry_after_ms,
            10);
  // Exactly at the ceiling: depth 10 * 200 ms = 2000 ms.
  EXPECT_EQ(admit(c, Priority::kNormal, false, c.capacity, 200.0)
                .retry_after_ms,
            2000);
  // Past the ceiling: still 2000.
  EXPECT_EQ(admit(c, Priority::kNormal, false, c.capacity, 201.0)
                .retry_after_ms,
            2000);
}

TEST(ServeAdmission, NormalDrainsBeforeBatchAcrossClients) {
  // Lane priority holds under mixed per-client queues: every normal job
  // pops before any batch job, even when the batch jobs arrived first.
  AdmissionQueue<int> q(small_config());
  EXPECT_TRUE(q.try_push(100, Priority::kBatch, false, "a").admitted);
  EXPECT_TRUE(q.try_push(200, Priority::kBatch, false, "b").admitted);
  EXPECT_TRUE(q.try_push(1, Priority::kNormal, false, "b").admitted);
  EXPECT_TRUE(q.try_push(2, Priority::kNormal, false, "a").admitted);
  EXPECT_EQ(q.pop().value(), 1);    // normal lane first (b, then a: DRR
  EXPECT_EQ(q.pop().value(), 2);    // rotation is arrival order)
  EXPECT_EQ(q.pop().value(), 100);  // then batch
  EXPECT_EQ(q.pop().value(), 200);
}

// --- per-client fairness ---------------------------------------------------

using QClock = AdmissionQueue<int>::Clock;

AdmissionConfig quota_config(double rate, double burst) {
  AdmissionConfig c = small_config();
  c.fairness.quota_rate_per_s = rate;
  c.fairness.quota_burst = burst;
  return c;
}

TEST(ServeAdmission, TokenBucketRejectsPastBurst) {
  AdmissionQueue<int> q(quota_config(1.0, 2.0));
  const QClock::time_point t0 = QClock::now();
  // A fresh client starts with a full bucket: `burst` pushes land.
  EXPECT_TRUE(q.try_push(1, Priority::kNormal, false, "a", t0).admitted);
  EXPECT_TRUE(q.try_push(2, Priority::kNormal, false, "a", t0).admitted);
  const AdmissionDecision d =
      q.try_push(3, Priority::kNormal, false, "a", t0);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, ErrorCode::kQuotaExceeded);
  EXPECT_GE(d.retry_after_ms, q.config().retry_after_min_ms);
  EXPECT_LE(d.retry_after_ms, q.config().retry_after_max_ms);
  // Other clients are untouched by a's empty bucket.
  EXPECT_TRUE(q.try_push(9, Priority::kNormal, false, "b", t0).admitted);
}

TEST(ServeAdmission, TokenBucketRefillsWithTime) {
  AdmissionQueue<int> q(quota_config(2.0, 2.0));  // 2 tokens/s
  const QClock::time_point t0 = QClock::now();
  EXPECT_TRUE(q.try_push(1, Priority::kNormal, false, "a", t0).admitted);
  EXPECT_TRUE(q.try_push(2, Priority::kNormal, false, "a", t0).admitted);
  EXPECT_FALSE(q.try_push(3, Priority::kNormal, false, "a", t0).admitted);
  // 600 ms later 1.2 tokens have accrued: one more push fits, two do not.
  const QClock::time_point t1 = t0 + std::chrono::milliseconds(600);
  EXPECT_TRUE(q.try_push(4, Priority::kNormal, false, "a", t1).admitted);
  EXPECT_FALSE(q.try_push(5, Priority::kNormal, false, "a", t1).admitted);
  // Refill caps at burst, never beyond: a long idle stretch buys exactly
  // `burst` pushes.
  const QClock::time_point t2 = t0 + std::chrono::hours(1);
  EXPECT_TRUE(q.try_push(6, Priority::kNormal, false, "a", t2).admitted);
  EXPECT_TRUE(q.try_push(7, Priority::kNormal, false, "a", t2).admitted);
  EXPECT_FALSE(q.try_push(8, Priority::kNormal, false, "a", t2).admitted);
}

TEST(ServeAdmission, QuotaHintCoversTokenAccrual) {
  // With an empty bucket and an idle queue, the hint is the time to the
  // next token: 1 token at 0.5/s = 2000 ms (the clamp ceiling here).
  AdmissionQueue<int> q(quota_config(0.5, 1.0));
  const QClock::time_point t0 = QClock::now();
  EXPECT_TRUE(q.try_push(1, Priority::kNormal, false, "a", t0).admitted);
  const AdmissionDecision d =
      q.try_push(2, Priority::kNormal, false, "a", t0);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.retry_after_ms, 2000);
}

TEST(ServeAdmission, ControlIsNeverQuotaLimited) {
  AdmissionQueue<int> q(quota_config(1.0, 1.0));
  const QClock::time_point t0 = QClock::now();
  EXPECT_TRUE(q.try_push(1, Priority::kNormal, false, "a", t0).admitted);
  EXPECT_FALSE(q.try_push(2, Priority::kNormal, false, "a", t0).admitted);
  // Control flows with the same identity and an empty bucket, and does not
  // spend tokens either.
  EXPECT_TRUE(q.try_push(3, Priority::kControl, false, "a", t0).admitted);
}

TEST(ServeAdmission, QuotaDisabledByDefault) {
  AdmissionQueue<int> q(small_config());  // rate 0
  const QClock::time_point t0 = QClock::now();
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(q.try_push(i, Priority::kNormal, false, "a", t0).admitted);
  }
}

TEST(ServeAdmission, DeficitRoundRobinInterleavesClients) {
  // A floods 3 requests before B lands 1: the pop order alternates per
  // request (quantum 1) instead of draining A first.
  AdmissionQueue<int> q(small_config());
  EXPECT_TRUE(q.try_push(11, Priority::kNormal, false, "a").admitted);
  EXPECT_TRUE(q.try_push(12, Priority::kNormal, false, "a").admitted);
  EXPECT_TRUE(q.try_push(13, Priority::kNormal, false, "a").admitted);
  EXPECT_TRUE(q.try_push(21, Priority::kNormal, false, "b").admitted);
  EXPECT_EQ(q.pop().value(), 11);
  EXPECT_EQ(q.pop().value(), 21);  // b's turn despite a's backlog
  EXPECT_EQ(q.pop().value(), 12);
  EXPECT_EQ(q.pop().value(), 13);
}

TEST(ServeAdmission, DrrQuantumGrantsRuns) {
  AdmissionConfig c = small_config();
  c.fairness.drr_quantum = 2;
  AdmissionQueue<int> q(c);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.try_push(10 + i, Priority::kNormal, false, "a").admitted);
    EXPECT_TRUE(q.try_push(20 + i, Priority::kNormal, false, "b").admitted);
  }
  // Two per turn: a,a,b,b,a,a,b,b.
  EXPECT_EQ(q.pop().value(), 10);
  EXPECT_EQ(q.pop().value(), 11);
  EXPECT_EQ(q.pop().value(), 20);
  EXPECT_EQ(q.pop().value(), 21);
  EXPECT_EQ(q.pop().value(), 12);
  EXPECT_EQ(q.pop().value(), 13);
  EXPECT_EQ(q.pop().value(), 22);
  EXPECT_EQ(q.pop().value(), 23);
}

TEST(ServeAdmission, ClientSnapshotsTrackOutcomes) {
  AdmissionQueue<int> q(quota_config(1.0, 1.0));
  const QClock::time_point t0 = QClock::now();
  EXPECT_TRUE(q.try_push(1, Priority::kNormal, false, "b", t0).admitted);
  EXPECT_TRUE(q.try_push(2, Priority::kNormal, false, "a", t0).admitted);
  EXPECT_FALSE(q.try_push(3, Priority::kNormal, false, "a", t0).admitted);
  (void)q.pop();
  (void)q.pop();
  q.record_done("a");
  const std::vector<ClientSnapshot> snap = q.clients();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].id, "a");  // sorted by id
  EXPECT_EQ(snap[0].accepted, 1u);
  EXPECT_EQ(snap[0].completed, 1u);
  EXPECT_EQ(snap[0].rejected_quota, 1u);
  EXPECT_EQ(snap[0].queued, 0u);
  EXPECT_EQ(snap[1].id, "b");
  EXPECT_EQ(snap[1].accepted, 1u);
  EXPECT_EQ(snap[1].completed, 0u);
  EXPECT_EQ(snap[1].rejected_quota, 0u);
}

TEST(ServeAdmission, IdleClientsEvictedPastCap) {
  AdmissionConfig c = small_config();
  c.fairness.max_clients = 2;
  AdmissionQueue<int> q(c);
  const QClock::time_point t0 = QClock::now();
  EXPECT_TRUE(q.try_push(1, Priority::kNormal, false, "a", t0).admitted);
  EXPECT_TRUE(q.try_push(
                   2, Priority::kNormal, false, "b",
                   t0 + std::chrono::seconds(1))
                  .admitted);
  (void)q.pop();
  (void)q.pop();
  // A third identity arrives with both queues empty: the least recently
  // seen ("a") is evicted, the map stays at the cap.
  EXPECT_TRUE(q.try_push(
                   3, Priority::kNormal, false, "c",
                   t0 + std::chrono::seconds(2))
                  .admitted);
  const std::vector<ClientSnapshot> snap = q.clients();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].id, "b");
  EXPECT_EQ(snap[1].id, "c");
}

TEST(ServeAdmission, QueuedClientsSurviveEviction) {
  AdmissionConfig c = small_config();
  c.fairness.max_clients = 1;
  AdmissionQueue<int> q(c);
  const QClock::time_point t0 = QClock::now();
  EXPECT_TRUE(q.try_push(1, Priority::kNormal, false, "a", t0).admitted);
  // "a" still has a queued job, so it cannot be evicted; "b" is admitted
  // anyway (max_clients is a soft cap bounded by capacity).
  EXPECT_TRUE(q.try_push(
                   2, Priority::kNormal, false, "b",
                   t0 + std::chrono::seconds(1))
                  .admitted);
  EXPECT_EQ(q.clients().size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

}  // namespace
}  // namespace agingsim::serve
