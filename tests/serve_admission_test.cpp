// Tests for agingd admission control: the tier ladder, retry-after hints
// and the bounded priority queue (src/serve/admission.hpp).

#include "src/serve/admission.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

namespace agingsim::serve {
namespace {

AdmissionConfig small_config() {
  AdmissionConfig c;
  c.capacity = 10;
  c.shed_refill_frac = 0.5;
  c.shed_batch_frac = 0.8;
  return c;
}

TEST(ServeAdmission, TierLadder) {
  const AdmissionConfig c = small_config();
  EXPECT_EQ(degradation_tier(c, 0), 0);
  EXPECT_EQ(degradation_tier(c, 4), 0);
  EXPECT_EQ(degradation_tier(c, 5), 1);   // >= 50%
  EXPECT_EQ(degradation_tier(c, 7), 1);
  EXPECT_EQ(degradation_tier(c, 8), 2);   // >= 80%
  EXPECT_EQ(degradation_tier(c, 10), 2);
}

TEST(ServeAdmission, Tier0AdmitsEverything) {
  const AdmissionConfig c = small_config();
  EXPECT_TRUE(admit(c, Priority::kNormal, false, 0, 1.0).admitted);
  EXPECT_TRUE(admit(c, Priority::kNormal, true, 0, 1.0).admitted);
  EXPECT_TRUE(admit(c, Priority::kBatch, false, 0, 1.0).admitted);
}

TEST(ServeAdmission, Tier1ShedsCacheRefillsOnly) {
  const AdmissionConfig c = small_config();
  const std::size_t depth = 5;  // tier 1
  EXPECT_TRUE(admit(c, Priority::kNormal, false, depth, 1.0).admitted);
  const AdmissionDecision refill =
      admit(c, Priority::kNormal, true, depth, 1.0);
  EXPECT_FALSE(refill.admitted);
  EXPECT_EQ(refill.reason, ErrorCode::kShedRefill);
  // Batch still flows at tier 1.
  EXPECT_TRUE(admit(c, Priority::kBatch, false, depth, 1.0).admitted);
}

TEST(ServeAdmission, Tier2RejectsBatch) {
  const AdmissionConfig c = small_config();
  const std::size_t depth = 8;  // tier 2
  EXPECT_TRUE(admit(c, Priority::kNormal, false, depth, 1.0).admitted);
  const AdmissionDecision batch =
      admit(c, Priority::kBatch, false, depth, 1.0);
  EXPECT_FALSE(batch.admitted);
  EXPECT_EQ(batch.reason, ErrorCode::kShedBatch);
}

TEST(ServeAdmission, FullQueueRejectsEverything) {
  const AdmissionConfig c = small_config();
  for (const Priority p : {Priority::kNormal, Priority::kBatch}) {
    const AdmissionDecision d = admit(c, p, false, c.capacity, 1.0);
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reason, ErrorCode::kOverloaded);
    EXPECT_GE(d.retry_after_ms, c.retry_after_min_ms);
  }
}

TEST(ServeAdmission, RetryAfterScalesWithBacklogAndClamps) {
  const AdmissionConfig c = small_config();
  const auto hint = [&](double avg_ms) {
    return admit(c, Priority::kNormal, false, c.capacity, avg_ms)
        .retry_after_ms;
  };
  EXPECT_EQ(hint(0.0), c.retry_after_min_ms);     // no estimate yet: floor
  EXPECT_GE(hint(50.0), hint(5.0));               // slower service: longer
  EXPECT_EQ(hint(1e9), c.retry_after_max_ms);     // clamped at the ceiling
}

TEST(ServeAdmission, QueueNormalPopsBeforeBatch) {
  AdmissionQueue<int> q(small_config());
  EXPECT_TRUE(q.try_push(1, Priority::kBatch, false).admitted);
  EXPECT_TRUE(q.try_push(2, Priority::kNormal, false).admitted);
  EXPECT_TRUE(q.try_push(3, Priority::kBatch, false).admitted);
  EXPECT_TRUE(q.try_push(4, Priority::kNormal, false).admitted);
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.pop().value(), 2);  // normals first, FIFO among themselves
  EXPECT_EQ(q.pop().value(), 4);
  EXPECT_EQ(q.pop().value(), 1);  // then batch, FIFO
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(ServeAdmission, ClosedQueueRejectsWithDrainingAndDrainsBacklog) {
  AdmissionQueue<int> q(small_config());
  EXPECT_TRUE(q.try_push(1, Priority::kNormal, false).admitted);
  q.close();
  const AdmissionDecision d = q.try_push(2, Priority::kNormal, false);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, ErrorCode::kDraining);
  // The backlog is still served, then pop() signals shutdown.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(ServeAdmission, PopBlocksUntilPushOrClose) {
  AdmissionQueue<int> q(small_config());
  std::optional<int> got;
  std::thread consumer([&] { got = q.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(q.try_push(9, Priority::kNormal, false).admitted);
  consumer.join();
  EXPECT_EQ(got.value(), 9);

  std::thread blocked([&] { got = q.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  blocked.join();
  EXPECT_FALSE(got.has_value());
}

TEST(ServeAdmission, ServiceTimeEwmaFeedsHint) {
  AdmissionQueue<int> q(small_config());
  EXPECT_DOUBLE_EQ(q.avg_service_ms(), 0.0);
  q.record_service_ms(100.0);
  EXPECT_DOUBLE_EQ(q.avg_service_ms(), 100.0);  // first sample seeds
  q.record_service_ms(0.0);
  EXPECT_NEAR(q.avg_service_ms(), 80.0, 1e-9);  // alpha = 0.2
}

}  // namespace
}  // namespace agingsim::serve
