// Convention-pinning tests for src/core/quantile.hpp: three quantile
// definitions used to disagree across the repo, and these tests nail the
// two surviving conventions to concrete values so a regression to any of
// the historic off-by-one variants (floor(q*N) indexing, bin walking)
// fails loudly.

#include "src/core/quantile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace agingsim {
namespace {

TEST(QuantileTest, NearestRankPinnedValues) {
  const std::vector<double> s = {10.0, 20.0, 30.0, 40.0};
  // ceil(q*N)-1: the smallest sample with at least q*N samples <= it.
  EXPECT_DOUBLE_EQ(quantile::nearest_rank(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile::nearest_rank(s, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(quantile::nearest_rank(s, 0.5), 20.0);  // NOT 30 (floor bias)
  EXPECT_DOUBLE_EQ(quantile::nearest_rank(s, 0.51), 30.0);
  EXPECT_DOUBLE_EQ(quantile::nearest_rank(s, 0.75), 30.0);
  EXPECT_DOUBLE_EQ(quantile::nearest_rank(s, 1.0), 40.0);
}

TEST(QuantileTest, NearestRankIsAlwaysAnActualSample) {
  const std::vector<double> s = {1.5, 2.5, 7.0};
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = quantile::nearest_rank(s, q);
    EXPECT_TRUE(v == 1.5 || v == 2.5 || v == 7.0) << "q=" << q << " v=" << v;
  }
}

TEST(QuantileTest, NearestRankDegenerateInputs) {
  EXPECT_DOUBLE_EQ(quantile::nearest_rank({}, 0.5), 0.0);
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(quantile::nearest_rank(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile::nearest_rank(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(quantile::nearest_rank(one, 1.0), 42.0);
}

TEST(QuantileTest, InterpolatedPinnedValues) {
  const std::vector<double> s = {10.0, 20.0, 30.0, 40.0};
  // Hyndman-Fan type 7: position q*(N-1), linear between samples — the
  // numpy/R default, so agingload SLO numbers compare across tools.
  EXPECT_DOUBLE_EQ(quantile::interpolated(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile::interpolated(s, 0.5), 25.0);
  EXPECT_NEAR(quantile::interpolated(s, 1.0 / 3.0), 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(quantile::interpolated(s, 0.75), 32.5);
  EXPECT_DOUBLE_EQ(quantile::interpolated(s, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile::interpolated({}, 0.5), 0.0);
}

TEST(QuantileTest, BothConventionsRejectOutOfRangeQ) {
  const std::vector<double> s = {1.0, 2.0};
  EXPECT_THROW(quantile::nearest_rank(s, -0.01), std::invalid_argument);
  EXPECT_THROW(quantile::nearest_rank(s, 1.01), std::invalid_argument);
  EXPECT_THROW(quantile::interpolated(s, -0.01), std::invalid_argument);
  EXPECT_THROW(quantile::interpolated(s, 1.01), std::invalid_argument);
}

TEST(QuantileTest, InverseNormalCdfReferencePoints) {
  EXPECT_NEAR(quantile::inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(quantile::inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(quantile::inverse_normal_cdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(quantile::inverse_normal_cdf(0.8413447), 1.0, 1e-5);
  // Symmetric and strictly monotone across the tails the MC stratifier
  // actually hits (stratum edges of a 16-way split).
  double prev = quantile::inverse_normal_cdf(1.0 / 64.0);
  for (int k = 2; k < 64; ++k) {
    const double p = static_cast<double>(k) / 64.0;
    const double z = quantile::inverse_normal_cdf(p);
    EXPECT_GT(z, prev);
    EXPECT_NEAR(z, -quantile::inverse_normal_cdf(1.0 - p), 1e-8);
    prev = z;
  }
  EXPECT_THROW(quantile::inverse_normal_cdf(0.0), std::invalid_argument);
  EXPECT_THROW(quantile::inverse_normal_cdf(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
