#include "src/sim/sta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/multiplier/multiplier.hpp"
#include "src/netlist/builder.hpp"
#include "src/netlist/surgeon.hpp"

namespace agingsim {
namespace {

TEST(StaTest, ChainAccumulatesDelay) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId x = nb.inv(a);
  const NetId y = nb.inv(x);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  const double inv = t.delay(CellKind::kInv);
  EXPECT_DOUBLE_EQ(r.arrival_ps[a], 0.0);
  EXPECT_DOUBLE_EQ(r.arrival_ps[x], inv);
  EXPECT_DOUBLE_EQ(r.arrival_ps[y], 2.0 * inv);
  EXPECT_DOUBLE_EQ(r.critical_path_ps, 2.0 * inv);
}

TEST(StaTest, TakesWorstInputArrival) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId slow = nb.inv(nb.inv(nb.inv(a)));  // 3 inv
  const NetId y = nb.and2(slow, b);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  EXPECT_DOUBLE_EQ(r.arrival_ps[y], 3.0 * t.delay(CellKind::kInv) +
                                        t.delay(CellKind::kAnd2));
}

TEST(StaTest, CriticalPathIsOverOutputsOnly) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId y = nb.inv(a);
  nb.inv(nb.inv(y));  // deeper dead-end logic, not an output
  nb.netlist().mark_output(y, "y");
  const StaResult r = run_sta(nb.netlist(), default_tech_library());
  EXPECT_DOUBLE_EQ(r.critical_path_ps,
                   default_tech_library().delay(CellKind::kInv));
}

TEST(StaTest, AgingOverlayScalesPerGate) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId x = nb.inv(a);
  const NetId y = nb.inv(x);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const std::vector<double> scales = {2.0, 3.0};
  const StaResult r = run_sta(nb.netlist(), t, scales);
  EXPECT_DOUBLE_EQ(r.critical_path_ps, 5.0 * t.delay(CellKind::kInv));
}

// Golden arrivals on a hand-built full adder: every net's arrival is the
// longest input arrival plus the cell delay, checked against closed-form
// values rather than against the implementation's own topological sweep.
TEST(StaTest, GoldenArrivalsOnFullAdder) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId cin = nb.input("cin");
  const NetId s1 = nb.xor2(a, b);
  const NetId sum = nb.xor2(s1, cin);
  const NetId c1 = nb.and2(a, b);
  const NetId c2 = nb.and2(s1, cin);
  const NetId carry = nb.or2(c1, c2);
  nb.netlist().mark_output(sum, "sum");
  nb.netlist().mark_output(carry, "carry");
  const TechLibrary& t = default_tech_library();
  const double dx = t.delay(CellKind::kXor2);
  const double da = t.delay(CellKind::kAnd2);
  const double dor = t.delay(CellKind::kOr2);
  const StaResult r = run_sta(nb.netlist(), t);
  EXPECT_DOUBLE_EQ(r.arrival_ps[s1], dx);
  EXPECT_DOUBLE_EQ(r.arrival_ps[sum], 2.0 * dx);
  EXPECT_DOUBLE_EQ(r.arrival_ps[c1], da);
  EXPECT_DOUBLE_EQ(r.arrival_ps[c2], dx + da);
  EXPECT_DOUBLE_EQ(r.arrival_ps[carry], dx + da + dor);
  EXPECT_DOUBLE_EQ(r.critical_path_ps, std::max(2.0 * dx, dx + da + dor));
}

// Tri-state buffers are ordinary timing arcs: the enable pin's arrival
// propagates through kTbuf exactly like a data pin's.
TEST(StaTest, TriStateEnableArcCounts) {
  NetlistBuilder nb;
  const NetId d = nb.input("d");
  const NetId en = nb.input("en");
  const NetId en_slow = nb.inv(nb.inv(en));
  const NetId bus = nb.tbuf(d, en_slow);
  nb.netlist().mark_output(bus, "bus");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  EXPECT_DOUBLE_EQ(r.arrival_ps[bus],
                   2.0 * t.delay(CellKind::kInv) + t.delay(CellKind::kTbuf));
  EXPECT_DOUBLE_EQ(r.critical_path_ps, r.arrival_ps[bus]);
}

// A net nothing reads (dangling gate output) is still timed — aging models
// consume per-net arrivals whether or not the net fans out — while nets
// never driven by a gate (unused primary inputs) stay at arrival 0.
TEST(StaTest, FanoutFreeAndUndrivenNets) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId unused = nb.input("unused");
  const NetId y = nb.inv(a);
  const NetId dangling = nb.and2(y, a);  // no fanout, not an output
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  EXPECT_DOUBLE_EQ(r.arrival_ps[unused], 0.0);
  EXPECT_DOUBLE_EQ(r.arrival_ps[dangling],
                   t.delay(CellKind::kInv) + t.delay(CellKind::kAnd2));
  EXPECT_DOUBLE_EQ(r.critical_path_ps, t.delay(CellKind::kInv));
}

// Tie cells have no fanin, so their arrival is just the cell delay, and a
// constant input to downstream logic starts the path there.
TEST(StaTest, TieCellsSeedTheirOwnDelay) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId one = nb.one();
  // The builder folds and2(a, one) to a, so drive the gate in raw to get a
  // real tie arc into the timing graph — and assert the fold while here.
  EXPECT_EQ(nb.and2(a, one), a);
  const NetId y = nb.netlist().add_gate(CellKind::kAnd2, {a, one});
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  EXPECT_DOUBLE_EQ(r.arrival_ps[one], t.delay(CellKind::kTie1));
  EXPECT_DOUBLE_EQ(r.arrival_ps[y],
                   t.delay(CellKind::kTie1) + t.delay(CellKind::kAnd2));
}

// A zero overlay entry freezes that gate's delay contribution entirely;
// the path through it is still traced.
TEST(StaTest, ZeroScaleOverlayFreezesAGate) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId x = nb.inv(a);
  const NetId y = nb.inv(x);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const std::vector<double> scales = {0.0, 1.0};
  const StaResult r = run_sta(nb.netlist(), t, scales);
  EXPECT_DOUBLE_EQ(r.arrival_ps[x], 0.0);
  EXPECT_DOUBLE_EQ(r.critical_path_ps, t.delay(CellKind::kInv));
}

TEST(StaTest, RejectsWrongOverlaySize) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  nb.netlist().mark_output(nb.inv(a), "y");
  const std::vector<double> wrong = {1.0, 1.0};
  EXPECT_THROW(run_sta(nb.netlist(), default_tech_library(), wrong),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// StaEngine: levelized min/max multi-corner analysis
// ---------------------------------------------------------------------------

// Golden min AND max arrivals on the full-adder fixture, against closed-form
// values. The min plane takes the *shortest* input arc per gate.
TEST(StaEngineTest, GoldenMinMaxOnFullAdder) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId cin = nb.input("cin");
  const NetId s1 = nb.xor2(a, b);
  const NetId sum = nb.xor2(s1, cin);
  const NetId c1 = nb.and2(a, b);
  const NetId c2 = nb.and2(s1, cin);
  const NetId carry = nb.or2(c1, c2);
  nb.netlist().mark_output(sum, "sum");
  nb.netlist().mark_output(carry, "carry");
  const TechLibrary& t = default_tech_library();
  const double dx = t.delay(CellKind::kXor2);
  const double da = t.delay(CellKind::kAnd2);
  const double dor = t.delay(CellKind::kOr2);

  const StaEngine engine(nb.netlist(), t);
  const CornerTiming r = engine.run_corner(StaCorner{"fresh", {}});
  // Max plane: identical to the legacy golden values.
  EXPECT_DOUBLE_EQ(r.max_arrival_ps[sum], 2.0 * dx);
  EXPECT_DOUBLE_EQ(r.max_arrival_ps[carry], dx + da + dor);
  // Min plane: sum's fastest arc is cin (arrival 0) straight into the
  // second XOR; carry's fastest is either AND (both reach it at min da).
  EXPECT_DOUBLE_EQ(r.min_arrival_ps[s1], dx);
  EXPECT_DOUBLE_EQ(r.min_arrival_ps[sum], dx);
  EXPECT_DOUBLE_EQ(r.min_arrival_ps[c1], da);
  EXPECT_DOUBLE_EQ(r.min_arrival_ps[c2], da);
  EXPECT_DOUBLE_EQ(r.min_arrival_ps[carry], da + dor);
  EXPECT_DOUBLE_EQ(r.critical_path_ps, std::max(2.0 * dx, dx + da + dor));
  EXPECT_DOUBLE_EQ(r.earliest_output_ps, std::min(dx, da + dor));
}

// The min plane includes the tri-state *enable* arc: a toggling bypass
// select propagates new data through a kTbuf as soon as the enable arrives,
// even while the data pin is still settling. The legacy always-enabled
// reading (run_sta, max side only) cannot see this — its arrival for the
// same net is the slow data path — which is exactly why run_sta must never
// be used for hold reasoning (satellite: max-only assumption, documented
// in sta.hpp and pinned here).
TEST(StaEngineTest, TbufEnableArcDefinesMinArrival) {
  NetlistBuilder nb;
  const NetId d = nb.input("d");
  const NetId en = nb.input("en");
  const NetId d_slow = nb.inv(nb.inv(d));
  const NetId bus = nb.tbuf(d_slow, en);  // enable straight off a PI
  nb.netlist().mark_output(bus, "bus");
  const TechLibrary& t = default_tech_library();
  const double dinv = t.delay(CellKind::kInv);
  const double dtb = t.delay(CellKind::kTbuf);

  const StaEngine engine(nb.netlist(), t);
  const CornerTiming r = engine.run_corner(StaCorner{"fresh", {}});
  EXPECT_DOUBLE_EQ(r.min_arrival_ps[bus], dtb);            // enable arc
  EXPECT_DOUBLE_EQ(r.max_arrival_ps[bus], 2.0 * dinv + dtb);  // data arc

  // The legacy entry point reports only the max-side number.
  const StaResult legacy = run_sta(nb.netlist(), t);
  EXPECT_EQ(legacy.arrival_ps[bus], r.max_arrival_ps[bus]);
  EXPECT_GT(legacy.arrival_ps[bus], r.min_arrival_ps[bus]);
}

// One run() call covers several corners; each corner's planes match the
// equivalent single-corner run exactly, and names survive.
TEST(StaEngineTest, MultiCornerSinglePass) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId y = nb.and2(nb.inv(a), b);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const StaEngine engine(nb.netlist(), t);

  std::vector<StaCorner> corners(2);
  corners[0].name = "fresh";
  corners[1].name = "aged";
  corners[1].gate_delay_scale.assign(nb.netlist().num_gates(), 1.5);
  const MinMaxStaResult r = engine.run(corners);
  ASSERT_EQ(r.corners.size(), 2u);
  EXPECT_EQ(r.corners[0].name, "fresh");
  EXPECT_EQ(r.corners[1].name, "aged");
  for (std::size_t c = 0; c < corners.size(); ++c) {
    const CornerTiming single = engine.run_corner(corners[c]);
    EXPECT_EQ(r.corners[c].min_arrival_ps, single.min_arrival_ps);
    EXPECT_EQ(r.corners[c].max_arrival_ps, single.max_arrival_ps);
    EXPECT_EQ(r.corners[c].critical_path_ps, single.critical_path_ps);
  }
  EXPECT_DOUBLE_EQ(r.corners[1].critical_path_ps,
                   1.5 * r.corners[0].critical_path_ps);
}

// Reference replica of the legacy run_sta loop: one ascending-gate-id
// sweep, worst input arrival + delay. The engine's max plane must agree
// with this *exactly* (operator==, no tolerance) — same pin visit order,
// same arithmetic — on every generated multiplier.
StaResult replica_legacy_sta(const Netlist& nl, const TechLibrary& tech,
                             std::span<const double> scale) {
  StaResult r;
  r.arrival_ps.assign(nl.num_nets(), 0.0);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gt = nl.gate(g);
    double worst = 0.0;
    for (const NetId in : nl.gate_inputs(g)) {
      worst = std::max(worst, r.arrival_ps[in]);
    }
    double d = tech.delay(gt.kind);
    if (!scale.empty()) d *= scale[g];
    r.arrival_ps[gt.out] = worst + d;
  }
  for (const NetId o : nl.output_nets()) {
    r.critical_path_ps = std::max(r.critical_path_ps, r.arrival_ps[o]);
  }
  return r;
}

TEST(StaEngineTest, MaxPlaneExactlyMatchesLegacyOnAllMultipliers) {
  const TechLibrary& t = default_tech_library();
  for (const MultiplierArch arch :
       {MultiplierArch::kArray, MultiplierArch::kColumnBypass,
        MultiplierArch::kRowBypass, MultiplierArch::kWallaceTree}) {
    for (const int width : {4, 8}) {
      const MultiplierNetlist mult = build_multiplier(arch, width);
      const Netlist& nl = mult.netlist;
      // Deterministic non-uniform overlay standing in for an aged corner.
      std::vector<double> scale(nl.num_gates());
      for (std::size_t g = 0; g < scale.size(); ++g) {
        scale[g] = 1.0 + 0.01 * static_cast<double>(g % 7);
      }
      const StaEngine engine(nl, t);
      for (const std::span<const double> overlay :
           {std::span<const double>{}, std::span<const double>(scale)}) {
        const StaResult ref = replica_legacy_sta(nl, t, overlay);
        StaCorner corner;
        corner.gate_delay_scale.assign(overlay.begin(), overlay.end());
        const CornerTiming mm = engine.run_corner(corner);
        ASSERT_EQ(mm.max_arrival_ps.size(), ref.arrival_ps.size());
        for (NetId n = 0; n < nl.num_nets(); ++n) {
          ASSERT_EQ(mm.max_arrival_ps[n], ref.arrival_ps[n])
              << arch_name(arch) << width << " net " << n;
        }
        EXPECT_EQ(mm.critical_path_ps, ref.critical_path_ps);
        // And the public legacy wrapper returns the same plane.
        const StaResult wrapped = run_sta(nl, t, overlay);
        EXPECT_EQ(wrapped.arrival_ps, ref.arrival_ps);
      }
    }
  }
}

// Golden downstream (net -> endpoint) delay bounds on the full adder with
// the carry output as the only endpoint.
TEST(StaEngineTest, DownstreamGoldenOnFullAdder) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId cin = nb.input("cin");
  const NetId s1 = nb.xor2(a, b);
  const NetId sum = nb.xor2(s1, cin);
  const NetId c1 = nb.and2(a, b);
  const NetId c2 = nb.and2(s1, cin);
  const NetId carry = nb.or2(c1, c2);
  nb.netlist().mark_output(sum, "sum");
  nb.netlist().mark_output(carry, "carry");
  const TechLibrary& t = default_tech_library();
  const double dx = t.delay(CellKind::kXor2);
  const double da = t.delay(CellKind::kAnd2);
  const double dor = t.delay(CellKind::kOr2);

  const StaEngine engine(nb.netlist(), t);
  std::vector<std::uint8_t> endpoint(nb.netlist().num_nets(), 0);
  endpoint[carry] = 1;
  const StaEngine::Downstream d =
      engine.downstream(StaCorner{"fresh", {}}, endpoint);
  EXPECT_DOUBLE_EQ(d.min_ps[carry], 0.0);
  EXPECT_DOUBLE_EQ(d.max_ps[carry], 0.0);
  EXPECT_DOUBLE_EQ(d.min_ps[c1], dor);
  EXPECT_DOUBLE_EQ(d.max_ps[c1], dor);
  EXPECT_DOUBLE_EQ(d.min_ps[s1], da + dor);
  EXPECT_DOUBLE_EQ(d.max_ps[s1], da + dor);
  // a reaches carry through c1 (da + dor) or through s1 -> c2 (dx + da + dor).
  EXPECT_DOUBLE_EQ(d.min_ps[a], da + dor);
  EXPECT_DOUBLE_EQ(d.max_ps[a], dx + da + dor);
  // sum is not an endpoint and reaches none: +inf / -inf sentinels.
  EXPECT_TRUE(std::isinf(d.min_ps[sum]));
  EXPECT_TRUE(std::isinf(d.max_ps[sum]));
  EXPECT_THROW(
      engine.downstream(StaCorner{"fresh", {}},
                        std::vector<std::uint8_t>(endpoint.size() + 1, 0)),
      std::invalid_argument);
}

TEST(StaEngineTest, LevelScheduleGroupsGatesTopologically) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId x = nb.inv(a);     // gate 0, level 0
  const NetId y = nb.inv(b);     // gate 1, level 0
  const NetId z = nb.and2(x, y); // gate 2, level 1
  nb.netlist().mark_output(z, "z");
  const StaEngine engine(nb.netlist(), default_tech_library());
  ASSERT_EQ(engine.num_levels(), 2);
  const auto l0 = engine.level_gates(0);
  const auto l1 = engine.level_gates(1);
  ASSERT_EQ(l0.size(), 2u);
  EXPECT_EQ(l0[0], 0u);
  EXPECT_EQ(l0[1], 1u);
  ASSERT_EQ(l1.size(), 1u);
  EXPECT_EQ(l1[0], 2u);
  EXPECT_TRUE(engine.level_gates(2).empty());
  EXPECT_TRUE(engine.level_gates(-1).empty());
}

TEST(StaEngineTest, ConstructorRejectsCorruptNetlist) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId x = nb.inv(a);
  const NetId y = nb.inv(x);
  nb.netlist().mark_output(y, "y");
  Netlist broken = nb.netlist();
  // Forward reference: gate 0 now reads its own output's successor.
  NetlistSurgeon(broken).set_pin(0, y);
  EXPECT_THROW(StaEngine(broken, default_tech_library()),
               std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
