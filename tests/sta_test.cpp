#include "src/sim/sta.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/netlist/builder.hpp"

namespace agingsim {
namespace {

TEST(StaTest, ChainAccumulatesDelay) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId x = nb.inv(a);
  const NetId y = nb.inv(x);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  const double inv = t.delay(CellKind::kInv);
  EXPECT_DOUBLE_EQ(r.arrival_ps[a], 0.0);
  EXPECT_DOUBLE_EQ(r.arrival_ps[x], inv);
  EXPECT_DOUBLE_EQ(r.arrival_ps[y], 2.0 * inv);
  EXPECT_DOUBLE_EQ(r.critical_path_ps, 2.0 * inv);
}

TEST(StaTest, TakesWorstInputArrival) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId slow = nb.inv(nb.inv(nb.inv(a)));  // 3 inv
  const NetId y = nb.and2(slow, b);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  EXPECT_DOUBLE_EQ(r.arrival_ps[y], 3.0 * t.delay(CellKind::kInv) +
                                        t.delay(CellKind::kAnd2));
}

TEST(StaTest, CriticalPathIsOverOutputsOnly) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId y = nb.inv(a);
  nb.inv(nb.inv(y));  // deeper dead-end logic, not an output
  nb.netlist().mark_output(y, "y");
  const StaResult r = run_sta(nb.netlist(), default_tech_library());
  EXPECT_DOUBLE_EQ(r.critical_path_ps,
                   default_tech_library().delay(CellKind::kInv));
}

TEST(StaTest, AgingOverlayScalesPerGate) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId x = nb.inv(a);
  const NetId y = nb.inv(x);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const std::vector<double> scales = {2.0, 3.0};
  const StaResult r = run_sta(nb.netlist(), t, scales);
  EXPECT_DOUBLE_EQ(r.critical_path_ps, 5.0 * t.delay(CellKind::kInv));
}

TEST(StaTest, RejectsWrongOverlaySize) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  nb.netlist().mark_output(nb.inv(a), "y");
  const std::vector<double> wrong = {1.0, 1.0};
  EXPECT_THROW(run_sta(nb.netlist(), default_tech_library(), wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
