#include "src/sim/sta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/netlist/builder.hpp"

namespace agingsim {
namespace {

TEST(StaTest, ChainAccumulatesDelay) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId x = nb.inv(a);
  const NetId y = nb.inv(x);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  const double inv = t.delay(CellKind::kInv);
  EXPECT_DOUBLE_EQ(r.arrival_ps[a], 0.0);
  EXPECT_DOUBLE_EQ(r.arrival_ps[x], inv);
  EXPECT_DOUBLE_EQ(r.arrival_ps[y], 2.0 * inv);
  EXPECT_DOUBLE_EQ(r.critical_path_ps, 2.0 * inv);
}

TEST(StaTest, TakesWorstInputArrival) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId slow = nb.inv(nb.inv(nb.inv(a)));  // 3 inv
  const NetId y = nb.and2(slow, b);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  EXPECT_DOUBLE_EQ(r.arrival_ps[y], 3.0 * t.delay(CellKind::kInv) +
                                        t.delay(CellKind::kAnd2));
}

TEST(StaTest, CriticalPathIsOverOutputsOnly) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId y = nb.inv(a);
  nb.inv(nb.inv(y));  // deeper dead-end logic, not an output
  nb.netlist().mark_output(y, "y");
  const StaResult r = run_sta(nb.netlist(), default_tech_library());
  EXPECT_DOUBLE_EQ(r.critical_path_ps,
                   default_tech_library().delay(CellKind::kInv));
}

TEST(StaTest, AgingOverlayScalesPerGate) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId x = nb.inv(a);
  const NetId y = nb.inv(x);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const std::vector<double> scales = {2.0, 3.0};
  const StaResult r = run_sta(nb.netlist(), t, scales);
  EXPECT_DOUBLE_EQ(r.critical_path_ps, 5.0 * t.delay(CellKind::kInv));
}

// Golden arrivals on a hand-built full adder: every net's arrival is the
// longest input arrival plus the cell delay, checked against closed-form
// values rather than against the implementation's own topological sweep.
TEST(StaTest, GoldenArrivalsOnFullAdder) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId cin = nb.input("cin");
  const NetId s1 = nb.xor2(a, b);
  const NetId sum = nb.xor2(s1, cin);
  const NetId c1 = nb.and2(a, b);
  const NetId c2 = nb.and2(s1, cin);
  const NetId carry = nb.or2(c1, c2);
  nb.netlist().mark_output(sum, "sum");
  nb.netlist().mark_output(carry, "carry");
  const TechLibrary& t = default_tech_library();
  const double dx = t.delay(CellKind::kXor2);
  const double da = t.delay(CellKind::kAnd2);
  const double dor = t.delay(CellKind::kOr2);
  const StaResult r = run_sta(nb.netlist(), t);
  EXPECT_DOUBLE_EQ(r.arrival_ps[s1], dx);
  EXPECT_DOUBLE_EQ(r.arrival_ps[sum], 2.0 * dx);
  EXPECT_DOUBLE_EQ(r.arrival_ps[c1], da);
  EXPECT_DOUBLE_EQ(r.arrival_ps[c2], dx + da);
  EXPECT_DOUBLE_EQ(r.arrival_ps[carry], dx + da + dor);
  EXPECT_DOUBLE_EQ(r.critical_path_ps, std::max(2.0 * dx, dx + da + dor));
}

// Tri-state buffers are ordinary timing arcs: the enable pin's arrival
// propagates through kTbuf exactly like a data pin's.
TEST(StaTest, TriStateEnableArcCounts) {
  NetlistBuilder nb;
  const NetId d = nb.input("d");
  const NetId en = nb.input("en");
  const NetId en_slow = nb.inv(nb.inv(en));
  const NetId bus = nb.tbuf(d, en_slow);
  nb.netlist().mark_output(bus, "bus");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  EXPECT_DOUBLE_EQ(r.arrival_ps[bus],
                   2.0 * t.delay(CellKind::kInv) + t.delay(CellKind::kTbuf));
  EXPECT_DOUBLE_EQ(r.critical_path_ps, r.arrival_ps[bus]);
}

// A net nothing reads (dangling gate output) is still timed — aging models
// consume per-net arrivals whether or not the net fans out — while nets
// never driven by a gate (unused primary inputs) stay at arrival 0.
TEST(StaTest, FanoutFreeAndUndrivenNets) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId unused = nb.input("unused");
  const NetId y = nb.inv(a);
  const NetId dangling = nb.and2(y, a);  // no fanout, not an output
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  EXPECT_DOUBLE_EQ(r.arrival_ps[unused], 0.0);
  EXPECT_DOUBLE_EQ(r.arrival_ps[dangling],
                   t.delay(CellKind::kInv) + t.delay(CellKind::kAnd2));
  EXPECT_DOUBLE_EQ(r.critical_path_ps, t.delay(CellKind::kInv));
}

// Tie cells have no fanin, so their arrival is just the cell delay, and a
// constant input to downstream logic starts the path there.
TEST(StaTest, TieCellsSeedTheirOwnDelay) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId one = nb.one();
  // The builder folds and2(a, one) to a, so drive the gate in raw to get a
  // real tie arc into the timing graph — and assert the fold while here.
  EXPECT_EQ(nb.and2(a, one), a);
  const NetId y = nb.netlist().add_gate(CellKind::kAnd2, {a, one});
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const StaResult r = run_sta(nb.netlist(), t);
  EXPECT_DOUBLE_EQ(r.arrival_ps[one], t.delay(CellKind::kTie1));
  EXPECT_DOUBLE_EQ(r.arrival_ps[y],
                   t.delay(CellKind::kTie1) + t.delay(CellKind::kAnd2));
}

// A zero overlay entry freezes that gate's delay contribution entirely;
// the path through it is still traced.
TEST(StaTest, ZeroScaleOverlayFreezesAGate) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId x = nb.inv(a);
  const NetId y = nb.inv(x);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  const std::vector<double> scales = {0.0, 1.0};
  const StaResult r = run_sta(nb.netlist(), t, scales);
  EXPECT_DOUBLE_EQ(r.arrival_ps[x], 0.0);
  EXPECT_DOUBLE_EQ(r.critical_path_ps, t.delay(CellKind::kInv));
}

TEST(StaTest, RejectsWrongOverlaySize) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  nb.netlist().mark_output(nb.inv(a), "y");
  const std::vector<double> wrong = {1.0, 1.0};
  EXPECT_THROW(run_sta(nb.netlist(), default_tech_library(), wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
