#include "src/workload/patterns.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace agingsim {
namespace {

TEST(PatternsTest, CountZerosBasics) {
  EXPECT_EQ(count_zeros(0, 16), 16);
  EXPECT_EQ(count_zeros(0xFFFF, 16), 0);
  EXPECT_EQ(count_zeros(0b1010, 4), 2);
  // Bits above the width are ignored.
  EXPECT_EQ(count_zeros(0xFF00, 8), 8);
  EXPECT_EQ(count_zeros(~std::uint64_t{0}, 64), 0);
}

TEST(PatternsTest, UniformPatternsRespectWidth) {
  Rng rng(1);
  const auto pats = uniform_patterns(rng, 12, 500);
  ASSERT_EQ(pats.size(), 500u);
  for (const auto& p : pats) {
    EXPECT_LT(p.a, 4096u);
    EXPECT_LT(p.b, 4096u);
  }
}

TEST(PatternsTest, UniformPatternsZeroCountIsBinomial) {
  Rng rng(2);
  const auto pats = uniform_patterns(rng, 16, 20000);
  double mean = 0.0;
  for (const auto& p : pats) mean += count_zeros(p.a, 16);
  mean /= static_cast<double>(pats.size());
  EXPECT_NEAR(mean, 8.0, 0.1);
}

class ZeroCountParam : public ::testing::TestWithParam<int> {};

TEST_P(ZeroCountParam, OperandHasExactZeroCount) {
  const int zeros = GetParam();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = operand_with_zero_count(rng, 16, zeros);
    EXPECT_EQ(count_zeros(v, 16), zeros);
    EXPECT_LT(v, 0x10000u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllZeroCounts, ZeroCountParam,
                         ::testing::Values(0, 1, 6, 8, 10, 15, 16));

TEST(PatternsTest, OperandZeroCountPositionsAreUniform) {
  // Every bit position should be cleared with roughly equal frequency.
  Rng rng(4);
  int cleared[8] = {0};
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t v = operand_with_zero_count(rng, 8, 3);
    for (int bit = 0; bit < 8; ++bit) {
      if (((v >> bit) & 1) == 0) ++cleared[bit];
    }
  }
  for (int bit = 0; bit < 8; ++bit) {
    EXPECT_NEAR(static_cast<double>(cleared[bit]) / trials, 3.0 / 8.0, 0.05)
        << "bit " << bit;
  }
}

TEST(PatternsTest, OperandZeroCountRejectsBadArgs) {
  Rng rng(5);
  EXPECT_THROW(operand_with_zero_count(rng, 8, -1), std::invalid_argument);
  EXPECT_THROW(operand_with_zero_count(rng, 8, 9), std::invalid_argument);
}

TEST(PatternsTest, MultiplicandZerosPatterns) {
  Rng rng(6);
  const auto pats = patterns_with_multiplicand_zeros(rng, 16, 10, 300);
  ASSERT_EQ(pats.size(), 300u);
  for (const auto& p : pats) {
    EXPECT_EQ(count_zeros(p.a, 16), 10);
    EXPECT_LT(p.b, 0x10000u);
  }
}

TEST(PatternsTest, DspPatternsAreInRangeAndCorrelated) {
  Rng rng(7);
  const auto pats = dsp_patterns(rng, 16, 1000);
  ASSERT_EQ(pats.size(), 1000u);
  double zeros_a = 0.0;
  for (const auto& p : pats) {
    EXPECT_LT(p.a, 0x10000u);
    EXPECT_LT(p.b, 0x10000u);
    zeros_a += count_zeros(p.a, 16);
  }
  // The signal operand lives in the low half of the range, so it averages
  // more zeros than the uniform 8 — that is the point of the workload.
  EXPECT_GT(zeros_a / 1000.0, 10.0);
}

TEST(PatternsTest, FirTapPatternsHoldCoefficientAndSamples) {
  Rng rng(8);
  const auto pats = fir_tap_patterns(rng, 16, 1000);
  ASSERT_EQ(pats.size(), 1000u);
  std::size_t a_changes = 0;
  for (std::size_t i = 0; i < pats.size(); ++i) {
    EXPECT_LT(pats[i].a, 0x100u);  // signal confined to the low half
    EXPECT_EQ(pats[i].b, pats[0].b);  // one fixed coefficient per tap
    if (i > 0 && pats[i].a != pats[i - 1].a) ++a_changes;
  }
  // Each sample is held for several operations (oversampled MAC), so the
  // multiplicand changes on well under half of the transitions.
  EXPECT_GT(a_changes, 0u);
  EXPECT_LT(a_changes, pats.size() / 3);
}

}  // namespace
}  // namespace agingsim
