#include "src/runtime/robust_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "src/fault/campaign.hpp"
#include "src/runtime/serial.hpp"
#include "src/runtime/stats_codec.hpp"

namespace agingsim::runtime {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;

RunnerConfig fast_config() {
  RunnerConfig config;
  config.backoff_base = milliseconds(1);
  config.backoff_cap = milliseconds(4);
  return config;
}

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_(fs::temp_directory_path() /
              (std::string("agingsim_runner_test_") + tag)) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TEST(RobustRunnerTest, PayloadsComeBackInUnitOrder) {
  RobustRunner runner(fast_config());
  RunReport report;
  const auto payloads = runner.run(
      17,
      [](std::uint64_t unit, const CancelToken&) {
        return "payload-" + std::to_string(unit);
      },
      &report);
  ASSERT_EQ(payloads.size(), 17u);
  for (std::uint64_t unit = 0; unit < 17; ++unit) {
    EXPECT_EQ(payloads[unit], "payload-" + std::to_string(unit));
    EXPECT_EQ(report.units[unit].state, UnitState::kComputed);
    EXPECT_EQ(report.units[unit].attempts, 1);
  }
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.computed, 17u);
  EXPECT_EQ(report.retries, 0u);
}

TEST(RobustRunnerTest, TransientFailuresAreRetriedWithBackoff) {
  RunnerConfig config = fast_config();
  config.max_retries = 3;
  RobustRunner runner(config);
  std::atomic<int> calls{0};
  RunReport report;
  const auto payloads = runner.run(
      1,
      [&](std::uint64_t, const CancelToken&) -> std::string {
        if (calls.fetch_add(1) < 2) {
          throw RunError(ErrorCategory::kTransient, "blip");
        }
        return "recovered";
      },
      &report);
  EXPECT_EQ(payloads[0], "recovered");
  EXPECT_EQ(report.units[0].state, UnitState::kComputed);
  EXPECT_EQ(report.units[0].attempts, 3);
  EXPECT_EQ(report.retries, 2u);
}

TEST(RobustRunnerTest, PermanentFailureQuarantinesWithoutAbortingSiblings) {
  RunnerConfig config = fast_config();
  config.max_retries = 5;  // must not be spent on a permanent failure
  RobustRunner runner(config);
  RunReport report;
  const auto payloads = runner.run(
      8,
      [](std::uint64_t unit, const CancelToken&) -> std::string {
        if (unit == 3) {
          throw RunError(ErrorCategory::kPermanent, "poison unit");
        }
        return std::to_string(unit * unit);
      },
      &report);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.units[3].state, UnitState::kQuarantined);
  EXPECT_EQ(report.units[3].attempts, 1);  // no retry for permanent
  EXPECT_EQ(report.units[3].category, ErrorCategory::kPermanent);
  EXPECT_EQ(report.units[3].error, "poison unit");
  EXPECT_TRUE(payloads[3].empty());
  for (std::uint64_t unit = 0; unit < 8; ++unit) {
    if (unit == 3) continue;
    EXPECT_EQ(payloads[unit], std::to_string(unit * unit));
  }
}

TEST(RobustRunnerTest, RetryBudgetExhaustionQuarantines) {
  RunnerConfig config = fast_config();
  config.max_retries = 2;
  RobustRunner runner(config);
  RunReport report;
  runner.run(
      1,
      [](std::uint64_t, const CancelToken&) -> std::string {
        throw RunError(ErrorCategory::kTransient, "never recovers");
      },
      &report);
  EXPECT_EQ(report.units[0].state, UnitState::kQuarantined);
  EXPECT_EQ(report.units[0].attempts, 3);  // 1 + max_retries
  EXPECT_EQ(report.units[0].category, ErrorCategory::kTransient);
}

TEST(RobustRunnerTest, UnclassifiedExceptionIsPermanent) {
  RunnerConfig config = fast_config();
  config.max_retries = 5;
  RobustRunner runner(config);
  RunReport report;
  runner.run(
      1,
      [](std::uint64_t, const CancelToken&) -> std::string {
        throw std::runtime_error("who knows what this is");
      },
      &report);
  EXPECT_EQ(report.units[0].state, UnitState::kQuarantined);
  EXPECT_EQ(report.units[0].attempts, 1);  // never retried blindly
  EXPECT_EQ(report.units[0].category, ErrorCategory::kPermanent);
  EXPECT_EQ(report.units[0].error, "who knows what this is");
}

TEST(RobustRunnerTest, WatchdogCancelsCooperativeStallThenRetrySucceeds) {
  RunnerConfig config = fast_config();
  config.deadline = milliseconds(30);
  config.max_retries = 1;
  RobustRunner runner(config);
  std::atomic<int> calls{0};
  RunReport report;
  const auto payloads = runner.run(
      1,
      [&](std::uint64_t, const CancelToken& cancel) -> std::string {
        if (calls.fetch_add(1) == 0) {
          // Stall far past the deadline, but cooperatively: the watchdog
          // flips the token and poll() unwinds with RunError(kTimeout).
          const auto until =
              std::chrono::steady_clock::now() + std::chrono::seconds(10);
          while (std::chrono::steady_clock::now() < until) {
            cancel.poll();
            std::this_thread::sleep_for(milliseconds(1));
          }
        }
        return "made it";
      },
      &report);
  EXPECT_EQ(payloads[0], "made it");
  EXPECT_EQ(report.units[0].state, UnitState::kComputed);
  EXPECT_EQ(report.units[0].attempts, 2);  // timeout is retryable
}

TEST(RobustRunnerTest, CancelTokenPollThrowsOnlyAfterCancel) {
  CancelToken token;
  EXPECT_NO_THROW(token.poll());
  token.cancel();
  try {
    token.poll();
    FAIL() << "poll after cancel must throw";
  } catch (const RunError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kTimeout);
  }
}

TEST(RobustRunnerTest, BackoffScheduleIsExponentialAndCapped) {
  RunnerConfig config;
  config.backoff_base = milliseconds(25);
  config.backoff_growth = 2.0;
  config.backoff_cap = milliseconds(2000);
  EXPECT_EQ(RobustRunner::backoff_delay(config, 1), milliseconds(25));
  EXPECT_EQ(RobustRunner::backoff_delay(config, 2), milliseconds(50));
  EXPECT_EQ(RobustRunner::backoff_delay(config, 3), milliseconds(100));
  EXPECT_EQ(RobustRunner::backoff_delay(config, 7), milliseconds(1600));
  EXPECT_EQ(RobustRunner::backoff_delay(config, 8), milliseconds(2000));
  EXPECT_EQ(RobustRunner::backoff_delay(config, 20), milliseconds(2000));
}

TEST(RobustRunnerTest, InvalidConfigIsRejected) {
  RunnerConfig config;
  config.max_retries = -1;
  EXPECT_THROW(RobustRunner{config}, RunError);
  config = RunnerConfig{};
  config.backoff_growth = 0.5;
  EXPECT_THROW(RobustRunner{config}, RunError);
}

TEST(RobustRunnerTest, ResumeRestoresEveryUnitWithoutRecomputing) {
  TempDir dir("full_resume");
  const auto task = [](std::uint64_t unit, const CancelToken&) {
    return "unit " + std::to_string(unit) + " data";
  };
  std::vector<std::string> first;
  {
    CheckpointStore store(dir.path(), 0xC0FFEE);
    store.load();
    RunnerConfig config = fast_config();
    config.checkpoints = &store;
    first = RobustRunner(config).run(9, task);
  }
  CheckpointStore store(dir.path(), 0xC0FFEE);
  EXPECT_EQ(store.load().loaded, 9u);
  RunnerConfig config = fast_config();
  config.checkpoints = &store;
  std::atomic<int> recomputed{0};
  RunReport report;
  const auto second = RobustRunner(config).run(
      9,
      [&](std::uint64_t unit, const CancelToken& cancel) {
        recomputed.fetch_add(1);
        return task(unit, cancel);
      },
      &report);
  EXPECT_EQ(recomputed.load(), 0);
  EXPECT_EQ(report.restored, 9u);
  EXPECT_EQ(report.computed, 0u);
  EXPECT_EQ(second, first);
}

TEST(RobustRunnerTest, PartialResumeComputesOnlyMissingUnits) {
  TempDir dir("partial_resume");
  CheckpointStore store(dir.path(), 1);
  store.persist(1, "restored-1");
  store.persist(3, "restored-3");
  RunnerConfig config = fast_config();
  config.checkpoints = &store;
  RunReport report;
  const auto payloads = RobustRunner(config).run(
      5,
      [](std::uint64_t unit, const CancelToken&) {
        return "computed-" + std::to_string(unit);
      },
      &report);
  EXPECT_EQ(report.restored, 2u);
  EXPECT_EQ(report.computed, 3u);
  EXPECT_EQ(payloads[0], "computed-0");
  EXPECT_EQ(payloads[1], "restored-1");  // restored payload wins
  EXPECT_EQ(payloads[2], "computed-2");
  EXPECT_EQ(payloads[3], "restored-3");
  EXPECT_EQ(payloads[4], "computed-4");
  // The freshly computed units are now persisted too.
  EXPECT_EQ(store.size(), 5u);
}

TEST(RobustRunnerTest, TransientChaosConvergesToChaosFreePayloads) {
  const auto task = [](std::uint64_t unit, const CancelToken&) {
    return "deterministic " + std::to_string(unit * 31 + 7);
  };
  const auto clean = RobustRunner(fast_config()).run(24, task);

  RunnerConfig config = fast_config();
  const auto chaos = ChaosPolicy::parse("3:0.3");  // transient throws only
  ASSERT_TRUE(chaos.has_value());
  config.chaos = *chaos;
  config.max_retries = 10;
  RunReport report;
  const auto under_chaos = RobustRunner(config).run(24, task, &report);
  EXPECT_TRUE(report.all_ok()) << report.summary();
  EXPECT_GT(report.retries, 0u);  // chaos actually fired
  EXPECT_EQ(under_chaos, clean);
}

TEST(RobustRunnerTest, ReportSummaryIsOneReadableLine) {
  RunReport report;
  RobustRunner(fast_config())
      .run(
          3,
          [](std::uint64_t unit, const CancelToken&) -> std::string {
            if (unit == 2) throw RunError(ErrorCategory::kPermanent, "x");
            return "ok";
          },
          &report);
  const std::string line = report.summary();
  EXPECT_NE(line.find("2 computed"), std::string::npos) << line;
  EXPECT_NE(line.find("1 quarantined"), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << line;
}

// --- integration with the campaign layers -------------------------------

class RuntimeIntegrationTest : public ::testing::Test {
 protected:
  RuntimeIntegrationTest()
      : mult_(build_column_bypass_multiplier(4)),
        pats_(bench::workload(4, 60)) {
    system_.period_ps = 0.6 * critical_path_ps(mult_, bench::tech());
    system_.ahl.width = 4;
    system_.ahl.skip = 2;
    campaign_config_.kind = FaultKind::kDelayOutlier;
    campaign_config_.trials = 6;
    campaign_config_.sites_per_trial = 1;
    campaign_config_.delay_factor = 6.0;
    campaign_config_.seed = 0xBEEF;
  }

  MultiplierNetlist mult_;
  std::vector<OperandPattern> pats_;
  VlSystemConfig system_;
  FaultCampaignConfig campaign_config_;
};

TEST_F(RuntimeIntegrationTest, CampaignRunnerPathMatchesPlainPath) {
  const FaultCampaign campaign(mult_, bench::tech(), system_,
                               campaign_config_);
  const FaultCampaignStats plain = campaign.run(pats_);
  RobustRunner runner(fast_config());
  RunReport report;
  const FaultCampaignStats robust = campaign.run(
      pats_, CampaignRunOptions{.runner = &runner, .report = &report});
  EXPECT_EQ(robust, plain);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.units.size(),
            static_cast<std::size_t>(campaign_config_.trials) + 1);
}

TEST_F(RuntimeIntegrationTest, CampaignResumeReproducesStatsExactly) {
  TempDir dir("campaign_resume");
  const FaultCampaign campaign(mult_, bench::tech(), system_,
                               campaign_config_);
  const std::uint64_t digest = campaign.config_digest(pats_);
  FaultCampaignStats first;
  {
    CheckpointStore store(dir.path(), digest);
    store.load();
    RunnerConfig config = fast_config();
    config.checkpoints = &store;
    RobustRunner runner(config);
    first = campaign.run(pats_, CampaignRunOptions{.runner = &runner});
  }
  CheckpointStore store(dir.path(), digest);
  EXPECT_EQ(store.load().loaded,
            static_cast<std::size_t>(campaign_config_.trials) + 1);
  RunnerConfig config = fast_config();
  config.checkpoints = &store;
  RobustRunner runner(config);
  RunReport report;
  const FaultCampaignStats resumed = campaign.run(
      pats_, CampaignRunOptions{.runner = &runner, .report = &report});
  EXPECT_EQ(resumed, first);
  EXPECT_EQ(report.computed, 0u);
}

TEST_F(RuntimeIntegrationTest, QuarantinedTrialsAreAccountedNotAborted) {
  // Permanent-only chaos: a unit is quarantined iff its first attempt draws
  // an injection. Pick a seed (deterministically) where the baseline
  // (unit 0) is spared and at least one trial is hit.
  ChaosPolicy chaos;
  chaos.rate = 0.3;
  chaos.throw_transient = false;
  chaos.throw_permanent = true;
  std::size_t expect_quarantined = 0;
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    chaos.seed = seed;
    if (chaos.decide(0, 0) != ChaosAction::kNone) continue;
    std::size_t hit = 0;
    for (std::uint64_t unit = 1;
         unit <= static_cast<std::uint64_t>(campaign_config_.trials);
         ++unit) {
      if (chaos.decide(unit, 0) != ChaosAction::kNone) ++hit;
    }
    if (hit > 0) {
      expect_quarantined = hit;
      break;
    }
  }
  ASSERT_GT(expect_quarantined, 0u) << "no suitable chaos seed found";

  const FaultCampaign campaign(mult_, bench::tech(), system_,
                               campaign_config_);
  RunnerConfig config = fast_config();
  config.chaos = chaos;
  RobustRunner runner(config);
  RunReport report;
  const FaultCampaignStats stats = campaign.run(
      pats_, CampaignRunOptions{.runner = &runner, .report = &report});
  EXPECT_EQ(stats.trials_quarantined, expect_quarantined);
  EXPECT_EQ(stats.trials + stats.trials_quarantined,
            static_cast<std::uint64_t>(campaign_config_.trials));
  EXPECT_EQ(report.quarantined, expect_quarantined);
  EXPECT_GT(stats.ops, 0u);  // surviving trials still aggregated
}

TEST_F(RuntimeIntegrationTest, BaselineQuarantineThrowsPermanent) {
  ChaosPolicy chaos;
  chaos.rate = 1.0;  // every unit, including the baseline
  chaos.throw_transient = false;
  chaos.throw_permanent = true;
  chaos.seed = 7;
  const FaultCampaign campaign(mult_, bench::tech(), system_,
                               campaign_config_);
  RunnerConfig config = fast_config();
  config.chaos = chaos;
  RobustRunner runner(config);
  try {
    campaign.run(pats_, CampaignRunOptions{.runner = &runner});
    FAIL() << "baseline quarantine must throw";
  } catch (const RunError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kPermanent);
    EXPECT_NE(std::string(e.what()).find("baseline"), std::string::npos);
  }
}

TEST_F(RuntimeIntegrationTest, SweepPeriodsRunnerPathMatchesPlain) {
  const auto trace = compute_op_trace(mult_, bench::tech(), pats_);
  const double crit = critical_path_ps(mult_, bench::tech());
  const auto periods = bench::linspace(0.5 * crit, 1.0 * crit, 5);
  const auto plain =
      bench::sweep_periods(mult_, trace, periods, 2, true);
  RobustRunner runner(fast_config());
  RunReport report;
  const auto robust = bench::sweep_periods(mult_, trace, periods, 2, true,
                                           0.0, nullptr, &runner, &report);
  ASSERT_EQ(robust.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(robust[i], plain[i]) << "sweep point " << i;
  }
  EXPECT_TRUE(report.all_ok());
}

TEST_F(RuntimeIntegrationTest, RunStatsCodecRoundTripsBitExact) {
  const auto trace = compute_op_trace(mult_, bench::tech(), pats_);
  VariableLatencySystem sys(mult_, bench::tech(), system_);
  const RunStats stats = sys.run(trace, 0.01);
  const RunStats decoded = decode_run_stats(encode_run_stats(stats));
  EXPECT_EQ(decoded, stats);

  const std::vector<RunStats> row{stats, RunStats{}};
  const std::vector<RunStats> decoded_row =
      decode_run_stats_row(encode_run_stats_row(row));
  ASSERT_EQ(decoded_row.size(), 2u);
  EXPECT_EQ(decoded_row[0], stats);
  EXPECT_EQ(decoded_row[1], RunStats{});
}

TEST_F(RuntimeIntegrationTest, CodecRejectsFieldCountSkewAsCorrupt) {
  ByteWriter w;
  w.u32(7);  // wrong field-count tag
  try {
    decode_run_stats(w.data());
    FAIL() << "field-count skew must be classified corrupt";
  } catch (const RunError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kCorrupt);
  }
}

// Regression (deadline latency): a task blocked in CancelToken::wait_until
// must unwind within one watchdog tick of the deadline, not after its full
// nominal sleep. Bounds are generous for loaded single-core CI machines —
// the point is "seconds, not the 20 s sleep".
TEST(RobustRunnerTest, WaitUntilUnblocksAtTheDeadlineNotTheSleepEnd) {
  RunnerConfig config = fast_config();
  config.deadline = milliseconds(100);
  config.max_retries = 0;  // quarantine on the first timeout
  RobustRunner runner(config);
  RunReport report;
  const auto t0 = std::chrono::steady_clock::now();
  runner.run(
      1,
      [](std::uint64_t, const CancelToken& cancel) -> std::string {
        cancel.wait_until(std::chrono::steady_clock::now() +
                          std::chrono::seconds(20));
        cancel.poll();
        return "never";
      },
      &report);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(report.units[0].state, UnitState::kQuarantined);
  EXPECT_EQ(report.units[0].category, ErrorCategory::kTimeout);
  EXPECT_LT(elapsed, std::chrono::seconds(10)) << "cancel did not wake the "
                                                  "blocking wait";
}

// Regression (deadline latency): the chaos stall used to poll on a fixed
// 1 ms tick; now it is a single cancellable wait, so the watchdog ends an
// 8 s stall within moments of the 150 ms deadline.
TEST(RobustRunnerTest, ChaosStallEndsAtTheDeadlineNotTheStallEnd) {
  RunnerConfig config = fast_config();
  config.deadline = milliseconds(150);
  config.max_retries = 0;
  config.chaos.seed = 7;
  config.chaos.rate = 1.0;  // every (unit, attempt) draws an action
  config.chaos.throw_transient = false;
  config.chaos.stall = true;
  config.chaos.stall_duration = std::chrono::seconds(8);
  RobustRunner runner(config);
  RunReport report;
  const auto t0 = std::chrono::steady_clock::now();
  runner.run(
      1, [](std::uint64_t, const CancelToken&) { return std::string("x"); },
      &report);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(report.units[0].state, UnitState::kQuarantined);
  EXPECT_EQ(report.units[0].category, ErrorCategory::kTimeout);
  EXPECT_LT(elapsed, std::chrono::seconds(6))
      << "stall outlived its watchdog deadline";
}

TEST(RobustRunnerTest, WaitUntilReturnsAtDeadlineWithoutCancel) {
  CancelToken token;
  const auto t0 = std::chrono::steady_clock::now();
  token.wait_until(t0 + milliseconds(20));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, milliseconds(20));
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.poll());
}

// --- external stop token (SIGTERM handlers, daemon drain) ---------------

TEST(RobustRunnerTest, PreCancelledStopTokenSkipsEveryUnit) {
  RunnerConfig config = fast_config();
  CancelToken stop;
  stop.cancel();
  config.stop = &stop;
  RobustRunner runner(config);
  RunReport report;
  std::atomic<int> executed{0};
  const auto payloads = runner.run(
      8,
      [&](std::uint64_t, const CancelToken&) {
        executed.fetch_add(1);
        return std::string("x");
      },
      &report);
  EXPECT_EQ(executed.load(), 0) << "no unit may start after the stop";
  ASSERT_EQ(payloads.size(), 8u);
  EXPECT_EQ(report.skipped, 8u);
  EXPECT_TRUE(report.interrupted());
  EXPECT_FALSE(report.all_ok());
  for (const UnitOutcome& u : report.units) {
    EXPECT_EQ(u.state, UnitState::kSkipped);
    EXPECT_EQ(u.attempts, 0);
  }
}

TEST(RobustRunnerTest, MidRunStopSkipsTheRemainderAndKeepsCompletedWork) {
  TempDir dir("midrun_stop");
  CheckpointStore store(dir.path(), 0x51u);
  store.load();
  RunnerConfig config = fast_config();
  CancelToken stop;
  config.stop = &stop;
  config.checkpoints = &store;
  RobustRunner runner(config);
  RunReport report;
  // The third unit pulls the plug, the way a signal handler would from
  // another thread. Units are processed by a pool, so exactly *which*
  // units complete is timing-dependent; the invariants below are not.
  std::atomic<int> started{0};
  runner.run(
      32,
      [&](std::uint64_t unit, const CancelToken&) {
        if (started.fetch_add(1) == 2) stop.cancel();
        return "payload-" + std::to_string(unit);
      },
      &report);
  EXPECT_TRUE(report.interrupted());
  EXPECT_GT(report.skipped, 0u) << "a 32-unit run outlived the stop";
  EXPECT_GT(report.computed, 0u);
  EXPECT_EQ(report.computed + report.skipped, 32u);
  // Every computed unit reached the checkpoint store before the return.
  EXPECT_EQ(store.size(), report.computed);

  // A resumed run restores the completed units and computes only the
  // skipped ones, producing payloads identical to an uninterrupted run.
  CheckpointStore resumed_store(dir.path(), 0x51u);
  EXPECT_EQ(resumed_store.load().loaded, report.computed);
  RunnerConfig resume_config = fast_config();
  resume_config.checkpoints = &resumed_store;
  RobustRunner resumed(resume_config);
  RunReport resume_report;
  const auto payloads = resumed.run(
      32,
      [](std::uint64_t unit, const CancelToken&) {
        return "payload-" + std::to_string(unit);
      },
      &resume_report);
  EXPECT_EQ(resume_report.restored, report.computed);
  EXPECT_EQ(resume_report.computed, report.skipped);
  EXPECT_TRUE(resume_report.all_ok());
  for (std::uint64_t unit = 0; unit < 32; ++unit) {
    EXPECT_EQ(payloads[unit], "payload-" + std::to_string(unit));
  }
}

TEST(RobustRunnerTest, StopTokenCancelsInFlightAttemptsCooperatively) {
  RunnerConfig config = fast_config();
  config.max_retries = 0;
  CancelToken stop;
  config.stop = &stop;
  RobustRunner runner(config);
  RunReport report;
  const auto t0 = std::chrono::steady_clock::now();
  runner.run(
      1,
      [&](std::uint64_t, const CancelToken& cancel) -> std::string {
        stop.cancel();  // the signal arrives while the unit is running
        // A cooperative task blocks on the token, not a fixed sleep.
        cancel.wait_until(std::chrono::steady_clock::now() +
                          std::chrono::seconds(30));
        cancel.poll();  // throws kTimeout once cancelled
        return "unreachable";
      },
      &report);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10))
      << "in-flight attempt was not cancelled by the stop token";
  EXPECT_EQ(report.computed, 0u);
  EXPECT_FALSE(report.all_ok());
}

// --- ordered progress reporting (streaming campaigns) --------------------

TEST(RobustRunnerTest, ProgressFiresInStrictUnitOrderWithPayloads) {
  RobustRunner runner(fast_config());
  std::vector<std::uint64_t> order;
  std::vector<std::string> seen;
  const auto payloads = runner.run(
      16,
      [](std::uint64_t unit, const CancelToken&) {
        return "p-" + std::to_string(unit);
      },
      nullptr,
      [&](std::uint64_t unit, const std::string& payload, UnitState state) {
        order.push_back(unit);
        seen.push_back(payload);
        EXPECT_EQ(state, UnitState::kComputed);
      });
  ASSERT_EQ(order.size(), 16u);
  for (std::uint64_t unit = 0; unit < 16; ++unit) {
    EXPECT_EQ(order[unit], unit);  // the completion frontier, never a skip
    EXPECT_EQ(seen[unit], payloads[unit]);
  }
}

TEST(RobustRunnerTest, ProgressReplaysRestoredUnitsOnResume) {
  TempDir dir("progress_resume");
  CheckpointStore store(dir.path(), 0xABu);
  store.persist(0, "restored-0");
  store.persist(1, "restored-1");
  store.load();
  RunnerConfig config = fast_config();
  config.checkpoints = &store;
  std::vector<std::pair<std::uint64_t, UnitState>> events;
  RobustRunner(config).run(
      4,
      [](std::uint64_t unit, const CancelToken&) {
        return "computed-" + std::to_string(unit);
      },
      nullptr,
      [&](std::uint64_t unit, const std::string&, UnitState state) {
        events.emplace_back(unit, state);
      });
  // Restored units replay through the callback immediately (in order),
  // then the frontier advances through the computed tail — a resumed
  // streaming client sees the same event sequence as an uninterrupted one.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], (std::pair<std::uint64_t, UnitState>{
                           0, UnitState::kRestored}));
  EXPECT_EQ(events[1], (std::pair<std::uint64_t, UnitState>{
                           1, UnitState::kRestored}));
  EXPECT_EQ(events[2], (std::pair<std::uint64_t, UnitState>{
                           2, UnitState::kComputed}));
  EXPECT_EQ(events[3], (std::pair<std::uint64_t, UnitState>{
                           3, UnitState::kComputed}));
}

TEST(RobustRunnerTest, ProgressFrontierStallsAtQuarantinedUnit) {
  RunnerConfig config = fast_config();
  config.max_retries = 0;
  RobustRunner runner(config);
  std::vector<std::uint64_t> order;
  runner.run(
      6,
      [](std::uint64_t unit, const CancelToken&) -> std::string {
        if (unit == 3) throw RunError(ErrorCategory::kPermanent, "poison");
        return "ok";
      },
      nullptr,
      [&](std::uint64_t unit, const std::string&, UnitState) {
        order.push_back(unit);
      });
  // Units past the quarantined one must NOT be reported: their indices
  // would be unsafe resume cursors (unit 3 never completed). The final
  // response still carries the full report; only the stream stalls.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(RunReportTest, SummaryMentionsSkippedUnits) {
  RunReport report;
  report.units.resize(3);
  report.computed = 1;
  report.skipped = 2;
  const std::string line = report.summary();
  EXPECT_NE(line.find("1 computed"), std::string::npos) << line;
  EXPECT_NE(line.find("2 skipped"), std::string::npos) << line;
}

}  // namespace
}  // namespace agingsim::runtime
