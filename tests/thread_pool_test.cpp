#include "src/exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace agingsim::exec {
namespace {

/// Scoped AGINGSIM_THREADS override that restores the previous value.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    if (const char* old = std::getenv("AGINGSIM_THREADS")) old_ = old;
    if (value != nullptr) {
      ::setenv("AGINGSIM_THREADS", value, 1);
    } else {
      ::unsetenv("AGINGSIM_THREADS");
    }
  }
  ~ScopedThreadsEnv() {
    if (old_.has_value()) {
      ::setenv("AGINGSIM_THREADS", old_->c_str(), 1);
    } else {
      ::unsetenv("AGINGSIM_THREADS");
    }
  }

 private:
  std::optional<std::string> old_;
};

TEST(ThreadPoolTest, EachIndexRunsExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.for_each_index(kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, ResultsComeBackInIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      parallel_for_indexed(pool, std::size_t{257}, [](std::size_t i) {
        return i * i;
      });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, ZeroAndOneIndexRegions) {
  ThreadPool pool(4);
  int calls = 0;
  pool.for_each_index(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.for_each_index(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossRegions) {
  ThreadPool pool(3);
  std::size_t total = 0;
  for (int round = 0; round < 50; ++round) {
    const auto out = parallel_for_indexed(pool, std::size_t{20},
                                          [](std::size_t i) { return i + 1; });
    total += std::accumulate(out.begin(), out.end(), std::size_t{0});
  }
  EXPECT_EQ(total, 50u * (20u * 21u / 2u));
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAfterAllIndicesRan) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(64);
    EXPECT_THROW(
        pool.for_each_index(64,
                            [&](std::size_t i) {
                              hits[i].fetch_add(1);
                              if (i == 7) throw std::runtime_error("boom");
                            }),
        std::runtime_error);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1)
          << "index " << i << " skipped after a sibling threw";
    }
  }
}

TEST(ThreadPoolTest, NestedRegionsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  const auto out =
      parallel_for_indexed(pool, std::size_t{16}, [&](std::size_t i) {
        const auto inner = parallel_for_indexed(
            pool, std::size_t{8}, [&](std::size_t j) { return i * 8 + j; });
        return std::accumulate(inner.begin(), inner.end(), std::size_t{0});
      });
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::size_t want = 0;
    for (std::size_t j = 0; j < 8; ++j) want += i * 8 + j;
    ASSERT_EQ(out[i], want);
  }
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnv) {
  {
    ScopedThreadsEnv env("3");
    EXPECT_EQ(default_thread_count(), 3);
  }
  {
    ScopedThreadsEnv env("1");
    EXPECT_EQ(default_thread_count(), 1);
  }
  {
    ScopedThreadsEnv env("100000");
    EXPECT_EQ(default_thread_count(), 256);  // clamped
  }
}

TEST(ThreadPoolTest, DefaultThreadCountIgnoresGarbageEnv) {
  const int hw_based = [] {
    ScopedThreadsEnv env(nullptr);
    return default_thread_count();
  }();
  EXPECT_GE(hw_based, 1);
  for (const char* bad : {"", "0", "-2", "abc", "4x"}) {
    ScopedThreadsEnv env(bad);
    EXPECT_EQ(default_thread_count(), hw_based) << "env value: " << bad;
  }
}

TEST(ThreadPoolTest, RejectedThreadsEnvWarnsOnceOnStderr) {
  // Use values no other test has seen: the warning is deduplicated per
  // distinct bad value, so a repeat from an earlier test would be silent.
  ScopedThreadsEnv env("bogus-thread-count");
  testing::internal::CaptureStderr();
  default_thread_count();
  default_thread_count();  // same value again: no second line
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("AGINGSIM_THREADS='bogus-thread-count'"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("ignored"), std::string::npos) << err;
  EXPECT_EQ(err.find("AGINGSIM_THREADS",
                     err.find("AGINGSIM_THREADS") + 1),
            std::string::npos)
      << "warning repeated for the same value: " << err;
}

TEST(ThreadPoolTest, ClampedThreadsEnvWarnsOnStderr) {
  ScopedThreadsEnv env("65536");
  testing::internal::CaptureStderr();
  EXPECT_EQ(default_thread_count(), 256);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("AGINGSIM_THREADS='65536'"), std::string::npos) << err;
  EXPECT_NE(err.find("clamped"), std::string::npos) << err;
}

}  // namespace
}  // namespace agingsim::exec
