#include "src/core/judging.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/workload/patterns.hpp"

namespace agingsim {
namespace {

TEST(JudgingTest, ThresholdSemantics) {
  const JudgingBlock jb(16, 8);
  EXPECT_TRUE(jb.one_cycle(0));               // 16 zeros
  EXPECT_TRUE(jb.one_cycle(0x00FF));          // 8 zeros
  EXPECT_FALSE(jb.one_cycle(0x01FF));         // 7 zeros
  EXPECT_FALSE(jb.one_cycle(0xFFFF));         // 0 zeros
}

TEST(JudgingTest, SkipEdgeCases) {
  EXPECT_TRUE(JudgingBlock(16, 0).one_cycle(0xFFFF));   // always one cycle
  EXPECT_FALSE(JudgingBlock(16, 17).one_cycle(0));      // never one cycle
  EXPECT_TRUE(JudgingBlock(16, 16).one_cycle(0));
  EXPECT_FALSE(JudgingBlock(16, 16).one_cycle(1));
}

TEST(JudgingTest, ConstructionValidation) {
  EXPECT_THROW(JudgingBlock(0, 0), std::invalid_argument);
  EXPECT_THROW(JudgingBlock(65, 1), std::invalid_argument);
  EXPECT_THROW(JudgingBlock(16, -1), std::invalid_argument);
  EXPECT_THROW(JudgingBlock(16, 18), std::invalid_argument);
  EXPECT_NO_THROW(JudgingBlock(16, 17));  // the "never" block is legal
}

TEST(JudgingTest, AnalyticRatioKnownValues) {
  // P(#zeros >= 8) over 16 bits = 0.5 + C(16,8)/2^17.
  EXPECT_NEAR(expected_one_cycle_ratio(16, 8), 0.5 + 12870.0 / 131072.0,
              1e-12);
  EXPECT_DOUBLE_EQ(expected_one_cycle_ratio(16, 0), 1.0);
  EXPECT_DOUBLE_EQ(expected_one_cycle_ratio(16, 17), 0.0);
  EXPECT_NEAR(expected_one_cycle_ratio(16, 16), 1.0 / 65536.0, 1e-15);
}

TEST(JudgingTest, AnalyticMatchesMonteCarlo) {
  Rng rng(99);
  const auto pats = uniform_patterns(rng, 16, 40000);
  for (int skip : {7, 8, 9}) {
    const JudgingBlock jb(16, skip);
    int ones = 0;
    for (const auto& p : pats) ones += jb.one_cycle(p.a);
    const double measured = static_cast<double>(ones) / pats.size();
    EXPECT_NEAR(measured, expected_one_cycle_ratio(16, skip), 0.01)
        << "skip " << skip;
  }
}

TEST(JudgingTest, RatioDecreasesWithSkip) {
  double prev = 1.1;
  for (int skip = 0; skip <= 33; ++skip) {
    const double r = expected_one_cycle_ratio(32, skip);
    EXPECT_LE(r, prev);
    prev = r;
  }
}

}  // namespace
}  // namespace agingsim
