#include "src/multiplier/multiplier.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/sim/sta.hpp"
#include "src/workload/patterns.hpp"

namespace agingsim {
namespace {

using ArchWidth = std::tuple<MultiplierArch, int>;

class MultiplierParam : public ::testing::TestWithParam<ArchWidth> {
 protected:
  MultiplierArch arch() const { return std::get<0>(GetParam()); }
  int width() const { return std::get<1>(GetParam()); }
};

TEST_P(MultiplierParam, ExhaustiveCorrectnessSmallWidths) {
  if (width() > 5) GTEST_SKIP() << "exhaustive only for small widths";
  const MultiplierNetlist m = build_multiplier(arch(), width());
  MultiplierSim sim(m, default_tech_library());
  const std::uint64_t lim = std::uint64_t{1} << width();
  for (std::uint64_t a = 0; a < lim; ++a) {
    for (std::uint64_t b = 0; b < lim; ++b) {
      sim.apply(a, b);
      ASSERT_EQ(sim.product(), a * b) << arch_name(arch()) << " " << a << "*"
                                      << b;
    }
  }
}

TEST_P(MultiplierParam, RandomCorrectnessLargeWidths) {
  const MultiplierNetlist m = build_multiplier(arch(), width());
  MultiplierSim sim(m, default_tech_library());
  Rng rng(0xABCDEF ^ static_cast<std::uint64_t>(width()));
  const int iters = width() >= 32 ? 150 : 400;
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t a = rng.next_bits(width());
    const std::uint64_t b = rng.next_bits(width());
    sim.apply(a, b);
    ASSERT_EQ(sim.product(), reference_multiply(a, b, width()))
        << arch_name(arch()) << " " << a << "*" << b;
  }
}

TEST_P(MultiplierParam, CornerOperandsAreCorrect) {
  const MultiplierNetlist m = build_multiplier(arch(), width());
  MultiplierSim sim(m, default_tech_library());
  const std::uint64_t max = (std::uint64_t{1} << width()) - 1;
  const std::uint64_t corners[] = {0,       1,           2,
                                   max,     max - 1,     max >> 1,
                                   max ^ 1, 0x5555555555555555ull & max,
                                   0xAAAAAAAAAAAAAAAAull & max};
  for (std::uint64_t a : corners) {
    for (std::uint64_t b : corners) {
      sim.apply(a, b);
      ASSERT_EQ(sim.product(), reference_multiply(a, b, width()))
          << arch_name(arch()) << " " << a << "*" << b;
    }
  }
}

TEST_P(MultiplierParam, StructuralMetadata) {
  const MultiplierNetlist m = build_multiplier(arch(), width());
  EXPECT_EQ(m.arch, arch());
  EXPECT_EQ(m.width, width());
  EXPECT_EQ(m.a_first_input, 0);
  EXPECT_EQ(m.b_first_input, width());
  EXPECT_EQ(m.netlist.num_inputs(), static_cast<std::size_t>(2 * width()));
  EXPECT_EQ(m.netlist.num_outputs(), static_cast<std::size_t>(2 * width()));
  EXPECT_NO_THROW(m.netlist.validate());
}

INSTANTIATE_TEST_SUITE_P(
    ArchWidthSweep, MultiplierParam,
    ::testing::Combine(::testing::Values(MultiplierArch::kArray,
                                         MultiplierArch::kColumnBypass,
                                         MultiplierArch::kRowBypass,
                                         MultiplierArch::kWallaceTree),
                       ::testing::Values(2, 3, 4, 5, 8, 12, 16, 32)),
    [](const ::testing::TestParamInfo<ArchWidth>& info) {
      return std::string(arch_name(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MultiplierTest, BypassingCostsGatesAndTransistors) {
  const auto am = build_array_multiplier(16);
  const auto cb = build_column_bypass_multiplier(16);
  const auto rb = build_row_bypass_multiplier(16);
  EXPECT_LT(am.netlist.transistor_count(), cb.netlist.transistor_count());
  EXPECT_LT(cb.netlist.transistor_count(), rb.netlist.transistor_count());
  // Bypass structures exist where expected.
  const auto cb_counts = cb.netlist.gate_count_by_kind();
  EXPECT_GT(cb_counts[static_cast<std::size_t>(CellKind::kMux2)], 0u);
  EXPECT_GT(cb_counts[static_cast<std::size_t>(CellKind::kTbuf)], 0u);
  const auto am_counts = am.netlist.gate_count_by_kind();
  EXPECT_EQ(am_counts[static_cast<std::size_t>(CellKind::kMux2)], 0u);
  EXPECT_EQ(am_counts[static_cast<std::size_t>(CellKind::kTbuf)], 0u);
}

TEST(MultiplierTest, BypassingLengthensCriticalPath) {
  const TechLibrary& t = default_tech_library();
  const double am = run_sta(build_array_multiplier(16).netlist, t)
                        .critical_path_ps;
  const double cb =
      run_sta(build_column_bypass_multiplier(16).netlist, t).critical_path_ps;
  const double rb =
      run_sta(build_row_bypass_multiplier(16).netlist, t).critical_path_ps;
  EXPECT_GT(cb, am);
  EXPECT_GT(rb, am);
}

TEST(MultiplierTest, ColumnBypassDelayFallsWithMultiplicandZeros) {
  // The paper's Fig. 6 premise: more zeros in the multiplicand => shorter
  // paths in the column-bypassing multiplier (on average).
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  const TechLibrary& t = default_tech_library();
  double means[3] = {0, 0, 0};
  const int zero_counts[3] = {4, 8, 12};
  for (int zc = 0; zc < 3; ++zc) {
    MultiplierSim sim(m, t);
    Rng rng(100 + zc);
    const auto pats =
        patterns_with_multiplicand_zeros(rng, 16, zero_counts[zc], 300);
    for (const auto& p : pats) {
      means[zc] += sim.apply(p.a, p.b).output_settle_ps;
    }
    means[zc] /= 300.0;
  }
  EXPECT_GT(means[0], means[1]);
  EXPECT_GT(means[1], means[2]);
}

TEST(MultiplierTest, RowBypassDelayFallsWithMultiplicatorZeros) {
  const MultiplierNetlist m = build_row_bypass_multiplier(16);
  const TechLibrary& t = default_tech_library();
  double mean_few = 0.0, mean_many = 0.0;
  {
    MultiplierSim sim(m, t);
    Rng rng(200);
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t b = operand_with_zero_count(rng, 16, 4);
      mean_few += sim.apply(rng.next_bits(16), b).output_settle_ps;
    }
  }
  {
    MultiplierSim sim(m, t);
    Rng rng(201);
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t b = operand_with_zero_count(rng, 16, 12);
      mean_many += sim.apply(rng.next_bits(16), b).output_settle_ps;
    }
  }
  EXPECT_GT(mean_few, mean_many);
}

TEST(MultiplierTest, BypassingReducesSwitchedCapacitanceOnSparseOperands) {
  // The original design goal of [22]/[23]: fewer active adders => less
  // switching. Compare AM and CB on multiplicands full of zeros.
  const TechLibrary& t = default_tech_library();
  const MultiplierNetlist am = build_array_multiplier(16);
  const MultiplierNetlist cb = build_column_bypass_multiplier(16);
  MultiplierSim am_sim(am, t), cb_sim(cb, t);
  Rng rng(300);
  double am_cap = 0.0, cb_cap = 0.0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = operand_with_zero_count(rng, 16, 12);
    const std::uint64_t b = rng.next_bits(16);
    am_cap += am_sim.apply(a, b).switched_cap_ff;
    cb_cap += cb_sim.apply(a, b).switched_cap_ff;
  }
  EXPECT_LT(cb_cap, am_cap);
}

TEST(MultiplierTest, JudgingOperandConvention) {
  EXPECT_TRUE(judges_on_multiplicand(MultiplierArch::kArray));
  EXPECT_TRUE(judges_on_multiplicand(MultiplierArch::kColumnBypass));
  EXPECT_FALSE(judges_on_multiplicand(MultiplierArch::kRowBypass));
  EXPECT_TRUE(judges_on_multiplicand(MultiplierArch::kWallaceTree));
}

TEST(MultiplierTest, WallaceTreeIsShallowest) {
  // The O(log n) reduction tree must beat the O(n) array in depth.
  const TechLibrary& t = default_tech_library();
  const double am =
      run_sta(build_array_multiplier(16).netlist, t).critical_path_ps;
  const double wt =
      run_sta(build_wallace_tree_multiplier(16).netlist, t).critical_path_ps;
  EXPECT_LT(wt, am);
}

TEST(MultiplierTest, WallaceDelayBarelyCorrelatesWithZeros) {
  // The reason zero-count judging needs a *bypassing* substrate: on a
  // Wallace tree, multiplicand zeros shift the delay distribution far less
  // than on the column-bypassing multiplier (relative to each design's
  // dynamic range).
  const TechLibrary& t = default_tech_library();
  const MultiplierNetlist wt = build_wallace_tree_multiplier(16);
  const MultiplierNetlist cb = build_column_bypass_multiplier(16);
  const auto mean_delay = [&](const MultiplierNetlist& m, int zeros,
                              std::uint64_t seed) {
    MultiplierSim sim(m, t);
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < 200; ++i) {
      sum += sim.apply(operand_with_zero_count(rng, 16, zeros),
                       rng.next_bits(16))
                 .output_settle_ps;
    }
    return sum / 200.0;
  };
  const double wt_shift = mean_delay(wt, 4, 1) / mean_delay(wt, 12, 2);
  const double cb_shift = mean_delay(cb, 4, 3) / mean_delay(cb, 12, 4);
  EXPECT_GT(cb_shift, wt_shift);
}

TEST(MultiplierTest, WidthValidation) {
  EXPECT_THROW(build_array_multiplier(1), std::invalid_argument);
  EXPECT_THROW(build_column_bypass_multiplier(33), std::invalid_argument);
  EXPECT_THROW(build_row_bypass_multiplier(0), std::invalid_argument);
  EXPECT_THROW(reference_multiply(1, 1, 0), std::invalid_argument);
}

TEST(MultiplierTest, ArchNames) {
  EXPECT_STREQ(arch_name(MultiplierArch::kArray), "AM");
  EXPECT_STREQ(arch_name(MultiplierArch::kColumnBypass), "CB");
  EXPECT_STREQ(arch_name(MultiplierArch::kRowBypass), "RB");
}

}  // namespace
}  // namespace agingsim
