#include "src/adder/adder.hpp"

#include <gtest/gtest.h>

#include "src/netlist/techlib.hpp"
#include "src/sim/sta.hpp"
#include "src/sim/timing_sim.hpp"
#include "src/workload/rng.hpp"

namespace agingsim {
namespace {

struct AdderSim {
  explicit AdderSim(const AdderNetlist& adder)
      : adder_(&adder),
        sim_(adder.netlist, default_tech_library()),
        pattern_(adder.netlist.num_inputs()) {}

  StepResult apply(std::uint64_t a, std::uint64_t b) {
    sim_.load_bus(pattern_, a, adder_->width, adder_->a_first_input);
    sim_.load_bus(pattern_, b, adder_->width, adder_->b_first_input);
    return sim_.step(pattern_);
  }

  // Sum including carry-out (bit `width`); hold bit excluded.
  std::uint64_t sum() const {
    const std::uint64_t bits = sim_.output_bits();
    return bits & ((std::uint64_t{1} << (adder_->width + 1)) - 1);
  }
  bool hold() const {
    return (sim_.output_bits() >> (adder_->width + 1)) & 1;
  }

  const AdderNetlist* adder_;
  TimingSim sim_;
  std::vector<Logic> pattern_;
};

class AdderWidthParam : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidthParam, RcaMatchesReference) {
  const AdderNetlist rca = build_ripple_carry_adder(GetParam());
  AdderSim sim(rca);
  Rng rng(11 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t a = rng.next_bits(GetParam());
    const std::uint64_t b = rng.next_bits(GetParam());
    sim.apply(a, b);
    ASSERT_EQ(sim.sum(), reference_add(a, b, GetParam())) << a << "+" << b;
  }
}

TEST_P(AdderWidthParam, ClaMatchesReference) {
  const AdderNetlist cla = build_carry_lookahead_adder(GetParam());
  AdderSim sim(cla);
  Rng rng(13 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t a = rng.next_bits(GetParam());
    const std::uint64_t b = rng.next_bits(GetParam());
    sim.apply(a, b);
    ASSERT_EQ(sim.sum(), reference_add(a, b, GetParam())) << a << "+" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidthParam,
                         ::testing::Values(2, 3, 4, 8, 16, 32, 48));

TEST(AdderTest, ExhaustiveFourBit) {
  const AdderNetlist rca = build_ripple_carry_adder(4);
  AdderSim sim(rca);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      sim.apply(a, b);
      ASSERT_EQ(sim.sum(), a + b);
    }
  }
}

TEST(AdderTest, VariableLatencyRcaComputesSumAndHold) {
  // The paper's Fig. 4: 8-bit RCA, hold = (A4^B4)&(A5^B5) (bit indices 4,5
  // 0-based are the paper's A5/A6... the paper's A4/A5 are 1-based; we
  // probe 0-based bits 3 and 4 to match).
  const AdderNetlist vl = build_variable_latency_rca(8, 3, 2);
  ASSERT_TRUE(vl.has_hold);
  AdderSim sim(vl);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; b += 7) {
      sim.apply(a, b);
      ASSERT_EQ(sim.sum(), a + b);
      ASSERT_EQ(sim.hold(), hold_predicate(a, b, 3, 2)) << a << " " << b;
    }
  }
}

TEST(AdderTest, HoldZeroBoundsThePathDelay) {
  // The guarantee the hold logic provides: when hold = 0 the carry chain
  // breaks inside the probed window, so the observed delay never reaches
  // what a full-length carry ripple produces. hold = 1 doesn't *force* a
  // long path — it admits one, so the adversarial all-propagate pattern
  // (a = 111...1, b = 1, carry ripples through every stage) must be slower
  // than every hold-0 pattern.
  const int width = 12, first = 4, probes = 2;
  const AdderNetlist vl = build_variable_latency_rca(width, first, probes);
  AdderSim sim(vl);
  Rng rng(99);
  double max_hold0 = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t a = rng.next_bits(width);
    const std::uint64_t b = rng.next_bits(width);
    const StepResult r = sim.apply(a, b);
    ASSERT_EQ(sim.sum(), reference_add(a, b, width));
    if (!sim.hold()) max_hold0 = std::max(max_hold0, r.output_settle_ps);
  }
  // Settle into a quiet state, then fire the full-length ripple.
  sim.apply(0, 0);
  const std::uint64_t all_ones = (std::uint64_t{1} << width) - 1;
  const StepResult ripple = sim.apply(all_ones, 1);
  ASSERT_EQ(sim.sum(), all_ones + 1);
  ASSERT_TRUE(sim.hold());  // every bit pair propagates
  EXPECT_GT(ripple.output_settle_ps, max_hold0);
}

TEST(AdderTest, HoldProbabilityIsQuarterForTwoProbes) {
  // Paper Section II-C: P(hold = 1) = 0.25 for two probed bit pairs, giving
  // the 0.75*5 + 0.25*10 = 6.25 average-latency argument.
  Rng rng(123);
  int holds = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    holds += hold_predicate(rng.next_bits(8), rng.next_bits(8), 3, 2);
  }
  EXPECT_NEAR(static_cast<double>(holds) / trials, 0.25, 0.02);
}

TEST(AdderTest, ClaIsFasterThanRca) {
  const TechLibrary& t = default_tech_library();
  const double rca =
      run_sta(build_ripple_carry_adder(32).netlist, t).critical_path_ps;
  const double cla =
      run_sta(build_carry_lookahead_adder(32).netlist, t).critical_path_ps;
  EXPECT_LT(cla, rca);
}

TEST(AdderTest, Validation) {
  EXPECT_THROW(build_ripple_carry_adder(1), std::invalid_argument);
  EXPECT_THROW(build_ripple_carry_adder(64), std::invalid_argument);
  EXPECT_THROW(build_variable_latency_rca(8, 7, 2), std::invalid_argument);
  EXPECT_THROW(build_variable_latency_rca(8, -1, 2), std::invalid_argument);
  EXPECT_THROW(build_variable_latency_rca(8, 3, 0), std::invalid_argument);
  EXPECT_THROW(reference_add(1, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
