#include "src/netlist/export.hpp"

#include <gtest/gtest.h>

#include "src/multiplier/multiplier.hpp"
#include "src/netlist/builder.hpp"

namespace agingsim {
namespace {

Netlist make_small() {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId en = nb.input("en");
  const NetId x = nb.xor2(a, b);
  const NetId t = nb.tbuf(x, en);
  nb.netlist().mark_output(t, "y");
  return std::move(nb.netlist());
}

TEST(ExportTest, VerilogContainsModuleAndInstances) {
  const Netlist nl = make_small();
  const std::string v = to_verilog(nl, "demo");
  EXPECT_NE(v.find("module demo("), std::string::npos);
  EXPECT_NE(v.find("module AGS_XOR2"), std::string::npos);
  EXPECT_NE(v.find("module AGS_TBUF"), std::string::npos);
  EXPECT_NE(v.find("AGS_XOR2 g0("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Only the used cell kinds get primitive definitions.
  EXPECT_EQ(v.find("module AGS_AND2"), std::string::npos);
}

TEST(ExportTest, TristateNetsAreTrireg) {
  const std::string v = to_verilog(make_small(), "demo");
  EXPECT_NE(v.find("trireg"), std::string::npos);
  EXPECT_NE(v.find("bufif1"), std::string::npos);
}

TEST(ExportTest, VerilogScalesToFullMultiplier) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  const std::string v = to_verilog(m.netlist, "cb16");
  // One instance line per gate.
  std::size_t instances = 0, pos = 0;
  while ((pos = v.find("\n  AGS_", pos)) != std::string::npos) {
    ++instances;
    ++pos;
  }
  EXPECT_EQ(instances, m.netlist.num_gates());
}

TEST(ExportTest, DotStructure) {
  const std::string d = to_dot(make_small(), "g");
  EXPECT_NE(d.find("digraph g {"), std::string::npos);
  EXPECT_NE(d.find("shape=box"), std::string::npos);
  EXPECT_NE(d.find("->"), std::string::npos);
  EXPECT_NE(d.find("shape=invtriangle"), std::string::npos);
}

TEST(ExportTest, DotRefusesHugeNetlists) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  EXPECT_THROW(to_dot(m.netlist, "big"), std::invalid_argument);
  EXPECT_NO_THROW(to_dot(m.netlist, "big", m.netlist.num_gates()));
}

}  // namespace
}  // namespace agingsim
