// Differential fuzzing of the simulation substrate: random combinational
// netlists are evaluated by TimingSim (single topological pass) and by an
// independent oracle (iterate-to-fixpoint, order-independent). Any
// divergence in functional values, any sensitized arrival beyond the STA
// bound, or any structural-validation miss is a bug in the engine the whole
// reproduction stands on.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"
#include "src/sim/sta.hpp"
#include "src/sim/timing_sim.hpp"
#include "src/workload/rng.hpp"

namespace agingsim {
namespace {

// Random DAG netlist: gates draw inputs uniformly from all earlier nets.
Netlist random_netlist(Rng& rng, int num_inputs, int num_gates) {
  Netlist nl;
  for (int i = 0; i < num_inputs; ++i) {
    nl.add_input("in" + std::to_string(i));
  }
  constexpr CellKind kKinds[] = {
      CellKind::kBuf,  CellKind::kInv,   CellKind::kAnd2, CellKind::kNand2,
      CellKind::kOr2,  CellKind::kNor2,  CellKind::kXor2, CellKind::kXnor2,
      CellKind::kAnd3, CellKind::kOr3,   CellKind::kMux2, CellKind::kTbuf,
      CellKind::kTie0, CellKind::kTie1};
  for (int g = 0; g < num_gates; ++g) {
    const CellKind kind =
        kKinds[rng.next_below(sizeof(kKinds) / sizeof(kKinds[0]))];
    const int n_in = cell_traits(kind).num_inputs;
    std::vector<NetId> ins;
    for (int k = 0; k < n_in; ++k) {
      ins.push_back(static_cast<NetId>(rng.next_below(nl.num_nets())));
    }
    nl.add_gate(kind, ins);
  }
  // Mark the last few nets as outputs.
  for (int i = 0; i < 4 && i < static_cast<int>(nl.num_nets()); ++i) {
    nl.mark_output(static_cast<NetId>(nl.num_nets() - 1 -
                                      static_cast<std::size_t>(i)),
                   "out" + std::to_string(i));
  }
  return nl;
}

/// Order-independent oracle: re-evaluates every gate until nothing changes.
/// Keeper state (TBUF) is carried across steps in `values`.
void fixpoint_eval(const Netlist& nl, std::span<const Logic> inputs,
                   std::vector<Logic>& values) {
  const auto in_nets = nl.input_nets();
  for (std::size_t i = 0; i < in_nets.size(); ++i) {
    values[in_nets[i]] = inputs[i];
  }
  bool changed = true;
  int rounds = 0;
  while (changed) {
    changed = false;
    ASSERT_LT(++rounds, 1000) << "oracle failed to converge";
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      const Gate& gate = nl.gate(g);
      std::vector<Logic> in_vals;
      for (NetId in : nl.gate_inputs(g)) in_vals.push_back(values[in]);
      const Logic next = eval_cell(gate.kind, in_vals, values[gate.out]);
      if (next != values[gate.out]) {
        values[gate.out] = next;
        changed = true;
      }
    }
  }
}

TEST(FuzzTest, TimingSimMatchesFixpointOracle) {
  Rng rng(0xF022);
  for (int trial = 0; trial < 40; ++trial) {
    const Netlist nl = random_netlist(rng, 6, 60);
    ASSERT_NO_THROW(nl.validate());
    TimingSim sim(nl, default_tech_library());
    std::vector<Logic> oracle(nl.num_nets(), Logic::kX);
    std::vector<Logic> pattern(nl.num_inputs());
    for (int step = 0; step < 30; ++step) {
      for (auto& v : pattern) v = logic_from_bool((rng.next() & 1) != 0);
      sim.step(pattern);
      fixpoint_eval(nl, pattern, oracle);
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        ASSERT_EQ(sim.value(n), oracle[n])
            << "trial " << trial << " step " << step << " net " << n;
      }
    }
  }
}

TEST(FuzzTest, SensitizedArrivalsNeverExceedSta) {
  Rng rng(0xF023);
  for (int trial = 0; trial < 25; ++trial) {
    const Netlist nl = random_netlist(rng, 5, 80);
    const StaResult sta = run_sta(nl, default_tech_library());
    // settle_ps spans *all* nets; random netlists have dead-end logic
    // deeper than any marked output, so bound it by the deepest net, not
    // by the output-only critical path.
    double deepest = 0.0;
    for (double a : sta.arrival_ps) deepest = std::max(deepest, a);
    TimingSim sim(nl, default_tech_library());
    std::vector<Logic> pattern(nl.num_inputs());
    for (int step = 0; step < 20; ++step) {
      for (auto& v : pattern) v = logic_from_bool((rng.next() & 1) != 0);
      const StepResult r = sim.step(pattern);
      EXPECT_LE(r.settle_ps, deepest + 1e-9);
      EXPECT_LE(r.output_settle_ps, sta.critical_path_ps + 1e-9);
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        EXPECT_LE(sim.arrival(n), sta.arrival_ps[n] + 1e-9) << n;
      }
    }
  }
}

TEST(FuzzTest, RepeatedPatternIsAlwaysSilent) {
  // Idempotence: re-applying the same pattern must produce no activity and
  // no delay, whatever the netlist (including tri-state keepers).
  Rng rng(0xF024);
  for (int trial = 0; trial < 25; ++trial) {
    const Netlist nl = random_netlist(rng, 6, 50);
    TimingSim sim(nl, default_tech_library());
    std::vector<Logic> pattern(nl.num_inputs());
    for (int step = 0; step < 10; ++step) {
      for (auto& v : pattern) v = logic_from_bool((rng.next() & 1) != 0);
      sim.step(pattern);
      const StepResult again = sim.step(pattern);
      EXPECT_EQ(again.toggles, 0u);
      EXPECT_DOUBLE_EQ(again.settle_ps, 0.0);
      EXPECT_DOUBLE_EQ(again.switched_cap_ff, 0.0);
    }
  }
}

TEST(FuzzTest, DensityIsFiniteAndNonNegative) {
  Rng rng(0xF025);
  for (int trial = 0; trial < 20; ++trial) {
    const Netlist nl = random_netlist(rng, 6, 70);
    TimingSim sim(nl, default_tech_library());
    std::vector<Logic> pattern(nl.num_inputs());
    for (int step = 0; step < 15; ++step) {
      for (auto& v : pattern) v = logic_from_bool((rng.next() & 1) != 0);
      const StepResult r = sim.step(pattern);
      EXPECT_GE(r.switched_cap_ff, 0.0);
      EXPECT_TRUE(std::isfinite(r.switched_cap_ff));
    }
  }
}

}  // namespace
}  // namespace agingsim
