// Differential fuzzing of the simulation substrate: random combinational
// netlists are evaluated by TimingSim (single topological pass) and by an
// independent oracle (iterate-to-fixpoint, order-independent). Any
// divergence in functional values, any sensitized arrival beyond the STA
// bound, or any structural-validation miss is a bug in the engine the whole
// reproduction stands on.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/lint/engine.hpp"
#include "src/lint/repair.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/surgeon.hpp"
#include "src/netlist/techlib.hpp"
#include "src/sim/sta.hpp"
#include "src/sim/timing_sim.hpp"
#include "src/workload/rng.hpp"

namespace agingsim {
namespace {

// Random DAG netlist: gates draw inputs uniformly from all earlier nets.
Netlist random_netlist(Rng& rng, int num_inputs, int num_gates) {
  Netlist nl;
  for (int i = 0; i < num_inputs; ++i) {
    nl.add_input("in" + std::to_string(i));
  }
  constexpr CellKind kKinds[] = {
      CellKind::kBuf,  CellKind::kInv,   CellKind::kAnd2, CellKind::kNand2,
      CellKind::kOr2,  CellKind::kNor2,  CellKind::kXor2, CellKind::kXnor2,
      CellKind::kAnd3, CellKind::kOr3,   CellKind::kMux2, CellKind::kTbuf,
      CellKind::kTie0, CellKind::kTie1};
  for (int g = 0; g < num_gates; ++g) {
    const CellKind kind =
        kKinds[rng.next_below(sizeof(kKinds) / sizeof(kKinds[0]))];
    const int n_in = cell_traits(kind).num_inputs;
    std::vector<NetId> ins;
    for (int k = 0; k < n_in; ++k) {
      ins.push_back(static_cast<NetId>(rng.next_below(nl.num_nets())));
    }
    nl.add_gate(kind, ins);
  }
  // Mark the last few nets as outputs.
  for (int i = 0; i < 4 && i < static_cast<int>(nl.num_nets()); ++i) {
    nl.mark_output(static_cast<NetId>(nl.num_nets() - 1 -
                                      static_cast<std::size_t>(i)),
                   "out" + std::to_string(i));
  }
  return nl;
}

/// Order-independent oracle: re-evaluates every gate until nothing changes.
/// Keeper state (TBUF) is carried across steps in `values`.
void fixpoint_eval(const Netlist& nl, std::span<const Logic> inputs,
                   std::vector<Logic>& values) {
  const auto in_nets = nl.input_nets();
  for (std::size_t i = 0; i < in_nets.size(); ++i) {
    values[in_nets[i]] = inputs[i];
  }
  bool changed = true;
  int rounds = 0;
  while (changed) {
    changed = false;
    ASSERT_LT(++rounds, 1000) << "oracle failed to converge";
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      const Gate& gate = nl.gate(g);
      std::vector<Logic> in_vals;
      for (NetId in : nl.gate_inputs(g)) in_vals.push_back(values[in]);
      const Logic next = eval_cell(gate.kind, in_vals, values[gate.out]);
      if (next != values[gate.out]) {
        values[gate.out] = next;
        changed = true;
      }
    }
  }
}

TEST(FuzzTest, TimingSimMatchesFixpointOracle) {
  Rng rng(0xF022);
  for (int trial = 0; trial < 40; ++trial) {
    const Netlist nl = random_netlist(rng, 6, 60);
    ASSERT_NO_THROW(nl.validate());
    TimingSim sim(nl, default_tech_library());
    std::vector<Logic> oracle(nl.num_nets(), Logic::kX);
    std::vector<Logic> pattern(nl.num_inputs());
    for (int step = 0; step < 30; ++step) {
      for (auto& v : pattern) v = logic_from_bool((rng.next() & 1) != 0);
      sim.step(pattern);
      fixpoint_eval(nl, pattern, oracle);
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        ASSERT_EQ(sim.value(n), oracle[n])
            << "trial " << trial << " step " << step << " net " << n;
      }
    }
  }
}

TEST(FuzzTest, SensitizedArrivalsNeverExceedSta) {
  Rng rng(0xF023);
  for (int trial = 0; trial < 25; ++trial) {
    const Netlist nl = random_netlist(rng, 5, 80);
    const StaResult sta = run_sta(nl, default_tech_library());
    // settle_ps spans *all* nets; random netlists have dead-end logic
    // deeper than any marked output, so bound it by the deepest net, not
    // by the output-only critical path.
    double deepest = 0.0;
    for (double a : sta.arrival_ps) deepest = std::max(deepest, a);
    TimingSim sim(nl, default_tech_library());
    std::vector<Logic> pattern(nl.num_inputs());
    for (int step = 0; step < 20; ++step) {
      for (auto& v : pattern) v = logic_from_bool((rng.next() & 1) != 0);
      const StepResult r = sim.step(pattern);
      EXPECT_LE(r.settle_ps, deepest + 1e-9);
      EXPECT_LE(r.output_settle_ps, sta.critical_path_ps + 1e-9);
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        EXPECT_LE(sim.arrival(n), sta.arrival_ps[n] + 1e-9) << n;
      }
    }
  }
}

TEST(FuzzTest, RepeatedPatternIsAlwaysSilent) {
  // Idempotence: re-applying the same pattern must produce no activity and
  // no delay, whatever the netlist (including tri-state keepers).
  Rng rng(0xF024);
  for (int trial = 0; trial < 25; ++trial) {
    const Netlist nl = random_netlist(rng, 6, 50);
    TimingSim sim(nl, default_tech_library());
    std::vector<Logic> pattern(nl.num_inputs());
    for (int step = 0; step < 10; ++step) {
      for (auto& v : pattern) v = logic_from_bool((rng.next() & 1) != 0);
      sim.step(pattern);
      const StepResult again = sim.step(pattern);
      EXPECT_EQ(again.toggles, 0u);
      EXPECT_DOUBLE_EQ(again.settle_ps, 0.0);
      EXPECT_DOUBLE_EQ(again.switched_cap_ff, 0.0);
    }
  }
}

TEST(FuzzTest, DensityIsFiniteAndNonNegative) {
  Rng rng(0xF025);
  for (int trial = 0; trial < 20; ++trial) {
    const Netlist nl = random_netlist(rng, 6, 70);
    TimingSim sim(nl, default_tech_library());
    std::vector<Logic> pattern(nl.num_inputs());
    for (int step = 0; step < 15; ++step) {
      for (auto& v : pattern) v = logic_from_bool((rng.next() & 1) != 0);
      const StepResult r = sim.step(pattern);
      EXPECT_GE(r.switched_cap_ff, 0.0);
      EXPECT_TRUE(std::isfinite(r.switched_cap_ff));
    }
  }
}

// ---------------------------------------------------------------------------
// Lint fuzzing: mutate valid random netlists the way buggy generators would
// (dropped pins, duplicated drivers, out-of-library kinds, combinational
// back-edges, dangling outputs, severed Razor taps) and require the lint
// engine to (a) never crash and (b) always flag the injected defect.
// ---------------------------------------------------------------------------

std::size_t lint_errors(const Netlist& nl) {
  lint::LintContext ctx;
  ctx.netlist = &nl;
  return lint::LintEngine().run(ctx).errors();
}

TEST(FuzzTest, LintFlagsEveryInjectedStructuralDefect) {
  Rng rng(0xF026);
  int injected = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Netlist nl = random_netlist(rng, 6, 40);
    ASSERT_EQ(lint_errors(nl), 0u) << "baseline must be clean, trial "
                                   << trial;
    NetlistSurgeon surgeon(nl);
    const auto mutation = rng.next_below(5);
    // Mutations needing a gate with at least one pin skip tie-only picks.
    const GateId g = static_cast<GateId>(rng.next_below(nl.num_gates()));
    switch (mutation) {
      case 0: {  // dropped pin (every cell kind has a fixed arity)
        if (nl.gate(g).in_count == 0) continue;
        surgeon.set_gate_pin_count(
            g, static_cast<std::uint16_t>(nl.gate(g).in_count - 1));
        break;
      }
      case 1: {  // duplicated driver: a second net claims gate g
        const NetId victim =
            static_cast<NetId>(rng.next_below(nl.num_nets()));
        if (victim == nl.gate(g).out) continue;
        surgeon.set_driver(victim, static_cast<std::int32_t>(g));
        break;
      }
      case 2:  // out-of-library cell kind
        surgeon.set_gate_kind(g, CellKind::kCount);
        break;
      case 3: {  // combinational back-edge: gate reads its own output
        if (nl.gate(g).in_count == 0) continue;
        surgeon.set_pin(nl.gate(g).in_begin, nl.gate(g).out);
        break;
      }
      default:  // dangling output
        surgeon.set_output_net(0, static_cast<NetId>(nl.num_nets() + 99));
        break;
    }
    ++injected;
    std::size_t errors = 0;
    ASSERT_NO_THROW(errors = lint_errors(nl))
        << "lint crashed on mutation " << mutation << " trial " << trial;
    EXPECT_GE(errors, 1u) << "mutation " << mutation << " undetected, trial "
                          << trial;
  }
  // The skip branches (tie cells, self-aliased victim) must not hollow the
  // test out.
  EXPECT_GE(injected, 40);
}

// The surgeon's *repair* primitives are the dual of its corruption
// primitives: random benign buffer insertions (mid-graph, with full
// renumbering, and at endpoints) must never trip a single lint rule and
// must preserve the logic function exactly — the guarantee the hold-repair
// pass builds on.
TEST(FuzzTest, BenignBufferInsertionsStayLintCleanAndEquivalent) {
  Rng rng(0xF028);
  for (int trial = 0; trial < 30; ++trial) {
    Netlist nl = random_netlist(rng, 6, 40);
    ASSERT_EQ(lint_errors(nl), 0u) << "baseline must be clean, trial "
                                   << trial;
    const Netlist original = nl;
    for (int m = 0; m < 4; ++m) {
      if (rng.next_below(4) == 0) {
        NetlistSurgeon(nl).insert_output_buffer(
            rng.next_below(nl.num_outputs()),
            static_cast<int>(1 + rng.next_below(3)));
        continue;
      }
      const GateId g = static_cast<GateId>(rng.next_below(nl.num_gates()));
      if (nl.gate(g).in_count == 0) continue;
      const NetId in = nl.gate_inputs(g)[rng.next_below(nl.gate(g).in_count)];
      NetlistSurgeon(nl).insert_buffer(in, g,
                                       static_cast<int>(1 + rng.next_below(3)));
    }
    ASSERT_NO_THROW(nl.validate()) << "trial " << trial;
    EXPECT_EQ(lint_errors(nl), 0u) << "benign mutation flagged, trial "
                                   << trial;
    const lint::EquivalenceSummary eq = lint::check_logic_equivalence(
        original, nl, default_tech_library(), 64, 0xF028u + trial);
    EXPECT_TRUE(eq.ok()) << "logic changed, trial " << trial << " ("
                         << eq.mismatches << " lanes)";
  }
}

TEST(FuzzTest, LintEngineNeverCrashesOnRandomMutants) {
  Rng rng(0xF027);
  for (int trial = 0; trial < 40; ++trial) {
    Netlist nl = random_netlist(rng, 5, 30);
    NetlistSurgeon surgeon(nl);
    for (int m = 0; m < 3; ++m) {
      const GateId g = static_cast<GateId>(rng.next_below(nl.num_gates()));
      const NetId anywhere =
          static_cast<NetId>(rng.next_below(nl.num_nets() + 20));
      switch (rng.next_below(7)) {
        case 0:
          surgeon.set_gate_kind(g, static_cast<CellKind>(rng.next_below(20)));
          break;
        case 1:
          surgeon.set_gate_pin_count(
              g, static_cast<std::uint16_t>(rng.next_below(6)));
          break;
        case 2:
          surgeon.set_gate_pin_begin(
              g, static_cast<std::uint32_t>(rng.next_below(nl.num_pins() + 30)));
          break;
        case 3:
          if (nl.num_pins() != 0) {
            surgeon.set_pin(rng.next_below(nl.num_pins()), anywhere);
          }
          break;
        case 4:
          surgeon.set_driver(
              static_cast<NetId>(rng.next_below(nl.num_nets())),
              static_cast<std::int32_t>(rng.next_below(nl.num_gates() + 3)) -
                  2);
          break;
        case 5:
          surgeon.set_gate_out(g, anywhere);
          break;
        default:
          surgeon.set_output_net(rng.next_below(nl.num_outputs()), anywhere);
          break;
      }
    }
    lint::LintReport report;
    ASSERT_NO_THROW(report = lint::LintEngine().run(
                        lint::LintContext{.netlist = &nl}))
        << "trial " << trial;
    // Whatever happened, the report must be internally consistent.
    EXPECT_EQ(report.errors() + report.warnings() + report.infos(),
              report.diagnostics.size());
  }
}

TEST(FuzzTest, LintFlagsSeveredRazorTapOnRandomNetlists) {
  Rng rng(0xF028);
  const TechLibrary& tech = default_tech_library();
  int effective = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Netlist nl = random_netlist(rng, 6, 60);
    const StaResult sta = run_sta(nl, tech);
    // Victim: the output with the deepest arrival (must be late enough that
    // halving its arrival still leaves it past the period).
    std::size_t victim = 0;
    double worst = 0.0;
    for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
      const double a = sta.arrival_ps[nl.output_nets()[i]];
      if (a > worst) {
        worst = a;
        victim = i;
      }
    }
    if (worst <= 0.0) continue;  // all outputs are tie cells; nothing late
    ++effective;
    lint::TimingContext timing;
    timing.tech = &tech;
    timing.period_ps = worst / 2.0;
    timing.razor_protected.assign(nl.num_outputs(), 1);
    timing.razor_protected[victim] = 0;
    lint::LintContext ctx;
    ctx.netlist = &nl;
    ctx.timing = &timing;
    lint::LintReport report;
    ASSERT_NO_THROW(report = lint::LintEngine().run(ctx)) << trial;
    bool flagged = false;
    for (const auto& d : report.diagnostics) {
      if (d.rule == "timing.razor-coverage" &&
          d.severity == lint::Severity::kError &&
          d.net == nl.output_nets()[victim]) {
        flagged = true;
      }
    }
    EXPECT_TRUE(flagged) << "severed tap on output " << victim
                         << " undetected, trial " << trial;
  }
  EXPECT_GE(effective, 15);
}

}  // namespace
}  // namespace agingsim
