#include "src/netlist/logic.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace agingsim {
namespace {

TEST(LogicTest, KnownnessClassification) {
  EXPECT_TRUE(is_known(Logic::kZero));
  EXPECT_TRUE(is_known(Logic::kOne));
  EXPECT_FALSE(is_known(Logic::kX));
  EXPECT_FALSE(is_known(Logic::kZ));
}

TEST(LogicTest, BoolRoundTrip) {
  EXPECT_EQ(logic_from_bool(false), Logic::kZero);
  EXPECT_EQ(logic_from_bool(true), Logic::kOne);
  EXPECT_FALSE(logic_to_bool(Logic::kZero));
  EXPECT_TRUE(logic_to_bool(Logic::kOne));
}

TEST(LogicTest, NotTruthTable) {
  EXPECT_EQ(logic_not(Logic::kZero), Logic::kOne);
  EXPECT_EQ(logic_not(Logic::kOne), Logic::kZero);
  EXPECT_EQ(logic_not(Logic::kX), Logic::kX);
  EXPECT_EQ(logic_not(Logic::kZ), Logic::kX);
}

TEST(LogicTest, AndControllingZeroShortCircuitsUnknowns) {
  EXPECT_EQ(logic_and(Logic::kZero, Logic::kX), Logic::kZero);
  EXPECT_EQ(logic_and(Logic::kX, Logic::kZero), Logic::kZero);
  EXPECT_EQ(logic_and(Logic::kZero, Logic::kZ), Logic::kZero);
  EXPECT_EQ(logic_and(Logic::kOne, Logic::kX), Logic::kX);
  EXPECT_EQ(logic_and(Logic::kOne, Logic::kOne), Logic::kOne);
  EXPECT_EQ(logic_and(Logic::kOne, Logic::kZero), Logic::kZero);
}

TEST(LogicTest, OrControllingOneShortCircuitsUnknowns) {
  EXPECT_EQ(logic_or(Logic::kOne, Logic::kX), Logic::kOne);
  EXPECT_EQ(logic_or(Logic::kX, Logic::kOne), Logic::kOne);
  EXPECT_EQ(logic_or(Logic::kZero, Logic::kX), Logic::kX);
  EXPECT_EQ(logic_or(Logic::kZero, Logic::kZero), Logic::kZero);
  EXPECT_EQ(logic_or(Logic::kZero, Logic::kOne), Logic::kOne);
}

TEST(LogicTest, XorPropagatesUnknowns) {
  EXPECT_EQ(logic_xor(Logic::kZero, Logic::kOne), Logic::kOne);
  EXPECT_EQ(logic_xor(Logic::kOne, Logic::kOne), Logic::kZero);
  EXPECT_EQ(logic_xor(Logic::kX, Logic::kOne), Logic::kX);
  EXPECT_EQ(logic_xor(Logic::kZero, Logic::kZ), Logic::kX);
}

TEST(LogicTest, CharRendering) {
  EXPECT_EQ(logic_to_char(Logic::kZero), '0');
  EXPECT_EQ(logic_to_char(Logic::kOne), '1');
  EXPECT_EQ(logic_to_char(Logic::kX), 'X');
  EXPECT_EQ(logic_to_char(Logic::kZ), 'Z');
  std::ostringstream os;
  os << Logic::kOne << Logic::kX;
  EXPECT_EQ(os.str(), "1X");
}

// De Morgan duality as a property over all value pairs.
TEST(LogicTest, DeMorganHoldsOverAllPairs) {
  const Logic vals[] = {Logic::kZero, Logic::kOne, Logic::kX, Logic::kZ};
  for (Logic a : vals) {
    for (Logic b : vals) {
      EXPECT_EQ(logic_not(logic_and(a, b)),
                logic_or(logic_not(a), logic_not(b)))
          << logic_to_char(a) << "&" << logic_to_char(b);
    }
  }
}

}  // namespace
}  // namespace agingsim
