// Differential tests of the 64-lane batch kernel (src/sim/batch_sim.hpp)
// against the scalar sparse kernel. The contract is the one PR 2 proved for
// sparse-vs-dense, extended lane-wise: every guaranteed StepResult field and
// every net value must be exactly `==` between a batch word and the 64
// scalar steps it packs — across power-up, aging overlays, all fault kinds
// (including transient strikes on word boundaries), mid-run overlay/aging
// swaps, partial tail words, and the guard-margin scalar-replay audit.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/aging/scenario.hpp"
#include "src/core/calibration.hpp"
#include "src/core/vl_multiplier.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/sim/batch_sim.hpp"
#include "src/workload/rng.hpp"

namespace agingsim {
namespace {

const TechLibrary& test_tech() {
  static const TechLibrary t = calibrated_tech_library(1880.0);
  return t;
}

/// Scoped setenv/unsetenv that restores the previous value.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_, old_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> old_;
};

struct AuditKnobs {
  std::vector<double> thresholds_ps;
  double guard_ps = 0.0;
};

/// Drives a batch simulator word-by-word and a scalar sparse simulator
/// pattern-by-pattern over `ops` random operand pairs and requires
/// bit-identical observable state after every lane: the four guaranteed
/// StepResult fields, the packed product, and every net value.
void expect_batch_identical(const MultiplierNetlist& m, std::size_t ops,
                            const FaultOverlay* overlay = nullptr,
                            std::span<const double> aging = {},
                            const AuditKnobs* audit = nullptr,
                            std::uint64_t seed = 0xD1FF) {
  MultiplierSim scalar(m, test_tech(), aging);
  BatchTimingSim batch(m.netlist, test_tech(), aging);
  if (overlay != nullptr) {
    scalar.set_fault_overlay(overlay);
    batch.set_fault_overlay(overlay);
  }
  if (audit != nullptr) {
    batch.set_timing_audit(audit->thresholds_ps, audit->guard_ps);
  }

  Rng rng(seed);
  std::vector<std::uint64_t> a_ops(ops), b_ops(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    a_ops[i] = rng.next_bits(m.width);
    b_ops[i] = rng.next_bits(m.width);
  }

  const std::size_t num_nets = m.netlist.num_nets();
  std::vector<std::uint64_t> words(m.netlist.input_nets().size());
  for (std::size_t chunk = 0; chunk < ops;
       chunk += static_cast<std::size_t>(kBatchLanes)) {
    const int lanes = static_cast<int>(
        std::min<std::size_t>(kBatchLanes, ops - chunk));
    std::fill(words.begin(), words.end(), 0);
    for (int l = 0; l < lanes; ++l) {
      batch.load_bus_lane(words, a_ops[chunk + static_cast<std::size_t>(l)],
                          m.width, m.a_first_input, l);
      batch.load_bus_lane(words, b_ops[chunk + static_cast<std::size_t>(l)],
                          m.width, m.b_first_input, l);
    }
    const std::span<const StepResult> res = batch.step_word(words, lanes);

    for (int l = 0; l < lanes; ++l) {
      const std::size_t i = chunk + static_cast<std::size_t>(l);
      const StepResult s = scalar.apply(a_ops[i], b_ops[i]);
      const StepResult& b = res[static_cast<std::size_t>(l)];
      // Exact equality on purpose: the kernels promise identity, not
      // closeness. gates_evaluated/gates_total are diagnostics and excluded.
      ASSERT_EQ(s.output_settle_ps, b.output_settle_ps)
          << "op " << i << " lane " << l;
      ASSERT_EQ(s.settle_ps, b.settle_ps) << "op " << i << " lane " << l;
      ASSERT_EQ(s.toggles, b.toggles) << "op " << i << " lane " << l;
      ASSERT_EQ(s.switched_cap_ff, b.switched_cap_ff)
          << "op " << i << " lane " << l;
      ASSERT_EQ(scalar.product(), batch.output_bits(l))
          << "op " << i << " lane " << l;

      for (std::size_t n = 0; n < num_nets; ++n) {
        const NetId net = static_cast<NetId>(n);
        if (scalar.timing_sim().value(net) != batch.lane_value(net, l)) {
          ADD_FAILURE() << "net " << n << " diverged at op " << i << " (lane "
                        << l << ")";
          return;
        }
      }
    }
  }
  EXPECT_EQ(batch.stats().lanes, ops);
  EXPECT_EQ(batch.stats().audit_mismatches, 0u);
}

TEST(BatchKernelTest, MatchesScalarOnRandomPatterns) {
  for (const auto arch :
       {MultiplierArch::kArray, MultiplierArch::kColumnBypass,
        MultiplierArch::kRowBypass, MultiplierArch::kWallaceTree}) {
    SCOPED_TRACE(arch_name(arch));
    const MultiplierNetlist m = build_multiplier(arch, 16);
    expect_batch_identical(m, 256);
  }
}

TEST(BatchKernelTest, SkipsWordIdleGates) {
  // The word-granular analogue of the sparse worklist: on a column-bypassing
  // multiplier a run of low-weight operands freezes whole columns for all 64
  // lanes at once, so the batch sweep must evaluate strictly fewer gate-words
  // than gates x words.
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  BatchTimingSim batch(m.netlist, test_tech());
  Rng rng(0xF00D);
  std::vector<std::uint64_t> words(m.netlist.input_nets().size());
  for (int word = 0; word < 8; ++word) {
    std::fill(words.begin(), words.end(), 0);
    for (int l = 0; l < kBatchLanes; ++l) {
      // Sparse multiplicand: most bypass selects stay 0 across the word.
      batch.load_bus_lane(words, rng.next_bits(4), m.width, m.a_first_input,
                          l);
      batch.load_bus_lane(words, rng.next_bits(16), m.width, m.b_first_input,
                          l);
    }
    batch.step_word(words);
  }
  const std::uint64_t dense_equiv =
      batch.stats().words * m.netlist.num_gates();
  EXPECT_LT(batch.stats().gates_evaluated, dense_equiv);
  EXPECT_GT(batch.stats().gates_evaluated, 0u);
}

TEST(BatchKernelTest, MatchesScalarUnderAgingOverlay) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  const BtiModel model = BtiModel::calibrated(test_tech());
  const AgingScenario scenario(m.netlist, test_tech(), model, 0x26F1, 200);
  const auto scales = scenario.delay_scales_at(5.0);
  expect_batch_identical(m, 192, nullptr, scales);
}

TEST(BatchKernelTest, MatchesScalarUnderStuckAtFaults) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  const std::size_t g = m.netlist.num_gates();
  FaultOverlay overlay(g);
  overlay.add(
      {.kind = FaultKind::kStuckAt0, .gate = static_cast<GateId>(g / 3)});
  overlay.add(
      {.kind = FaultKind::kStuckAt1, .gate = static_cast<GateId>(2 * g / 3)});
  expect_batch_identical(m, 192, &overlay);
}

TEST(BatchKernelTest, MatchesScalarAcrossTransientWindows) {
  const MultiplierNetlist m = build_row_bypass_multiplier(16);
  FaultOverlay overlay(m.netlist.num_gates());
  // Strikes covering every word-relative position that has its own code
  // path: lane 0 of the first word, the last lane of a word (the un-flip
  // happens in the *next* word's sweep: the forced-gates spill), lane 0 of
  // the following word (strike and cleanup collide), and a mid-word lane.
  overlay.add({.kind = FaultKind::kTransient,
               .gate = static_cast<GateId>(m.netlist.num_gates() / 2),
               .cycle = 0});
  overlay.add({.kind = FaultKind::kTransient,
               .gate = static_cast<GateId>(m.netlist.num_gates() / 4),
               .cycle = 63});
  overlay.add({.kind = FaultKind::kTransient,
               .gate = static_cast<GateId>(m.netlist.num_gates() / 5),
               .cycle = 64});
  overlay.add({.kind = FaultKind::kTransient,
               .gate = static_cast<GateId>(m.netlist.num_gates() / 3),
               .cycle = 100});
  expect_batch_identical(m, 192, &overlay);
}

TEST(BatchKernelTest, MatchesScalarWithBackToBackStrikesOnOneGate) {
  // Same gate struck on the last lane of word 0 and the first lane of word
  // 1: the cleanup un-flip and the new flip land in the same sweep.
  const MultiplierNetlist m = build_array_multiplier(8);
  FaultOverlay overlay(m.netlist.num_gates());
  const GateId victim = static_cast<GateId>(m.netlist.num_gates() / 2);
  overlay.add({.kind = FaultKind::kTransient, .gate = victim, .cycle = 63});
  overlay.add({.kind = FaultKind::kTransient, .gate = victim, .cycle = 64});
  expect_batch_identical(m, 160, &overlay);
}

TEST(BatchKernelTest, MatchesScalarUnderDelayOutliers) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  FaultOverlay overlay(m.netlist.num_gates());
  overlay.add({.kind = FaultKind::kDelayOutlier,
               .gate = static_cast<GateId>(m.netlist.num_gates() - 10),
               .delay_factor = 4.0});
  expect_batch_identical(m, 192, &overlay);
}

TEST(BatchKernelTest, PartialTailWordMatchesScalar) {
  // 100 ops = one full word + a 36-lane tail; the tail word's inactive
  // lanes must not disturb state or counters.
  const MultiplierNetlist m = build_row_bypass_multiplier(12);
  expect_batch_identical(m, 100);
}

TEST(BatchKernelTest, OverlayAndAgingSwapsMidRunStayIdentical) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  FaultOverlay overlay(m.netlist.num_gates());
  overlay.add({.kind = FaultKind::kStuckAt1,
               .gate = static_cast<GateId>(m.netlist.num_gates() / 2)});
  const BtiModel model = BtiModel::calibrated(test_tech());
  const AgingScenario scenario(m.netlist, test_tech(), model, 0x26F1, 200);
  const auto aged = scenario.delay_scales_at(7.0);

  MultiplierSim scalar(m, test_tech());
  BatchTimingSim batch(m.netlist, test_tech());
  Rng rng(0xABCD);
  std::vector<std::uint64_t> words(m.netlist.input_nets().size());
  const auto run_both = [&](int num_words) {
    for (int w = 0; w < num_words; ++w) {
      std::fill(words.begin(), words.end(), 0);
      std::vector<std::uint64_t> a_ops(kBatchLanes), b_ops(kBatchLanes);
      for (int l = 0; l < kBatchLanes; ++l) {
        a_ops[static_cast<std::size_t>(l)] = rng.next_bits(m.width);
        b_ops[static_cast<std::size_t>(l)] = rng.next_bits(m.width);
        batch.load_bus_lane(words, a_ops[static_cast<std::size_t>(l)],
                            m.width, m.a_first_input, l);
        batch.load_bus_lane(words, b_ops[static_cast<std::size_t>(l)],
                            m.width, m.b_first_input, l);
      }
      const std::span<const StepResult> res = batch.step_word(words);
      for (int l = 0; l < kBatchLanes; ++l) {
        const StepResult s = scalar.apply(a_ops[static_cast<std::size_t>(l)],
                                          b_ops[static_cast<std::size_t>(l)]);
        ASSERT_EQ(s.switched_cap_ff,
                  res[static_cast<std::size_t>(l)].switched_cap_ff);
        ASSERT_EQ(s.settle_ps, res[static_cast<std::size_t>(l)].settle_ps);
      }
      for (std::size_t n = 0; n < m.netlist.num_nets(); ++n) {
        const NetId net = static_cast<NetId>(n);
        ASSERT_EQ(scalar.timing_sim().value(net),
                  batch.lane_value(net, kBatchLanes - 1));
      }
    }
  };
  run_both(2);
  scalar.set_fault_overlay(&overlay);  // install mid-run...
  batch.set_fault_overlay(&overlay);
  run_both(2);
  scalar.set_aging(aged);  // ...age the circuit under the fault...
  batch.set_aging(aged);
  run_both(2);
  scalar.set_fault_overlay(nullptr);  // ...and release the overlay
  batch.set_fault_overlay(nullptr);
  run_both(2);
}

TEST(BatchKernelTest, FullReplayAuditAgreesEverywhere) {
  // A guard wide enough to catch every lane forces the scalar-replay path
  // on all of them: the audit must agree lane-for-lane (the tripwire stays
  // 0) and the adopted results still match the reference stream.
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  const AuditKnobs audit{.thresholds_ps = {0.0}, .guard_ps = 1e12};
  expect_batch_identical(m, 192, nullptr, {}, &audit);

  // Replay accounting: with the all-lanes guard the replayed-lane counter
  // equals the lane counter.
  BatchTimingSim counted(m.netlist, test_tech());
  counted.set_timing_audit(audit.thresholds_ps, audit.guard_ps);
  std::vector<std::uint64_t> words(m.netlist.input_nets().size());
  Rng rng(0x5EED);
  for (int w = 0; w < 3; ++w) {
    std::fill(words.begin(), words.end(), 0);
    for (int l = 0; l < kBatchLanes; ++l) {
      counted.load_bus_lane(words, rng.next_bits(m.width), m.width,
                            m.a_first_input, l);
      counted.load_bus_lane(words, rng.next_bits(m.width), m.width,
                            m.b_first_input, l);
    }
    counted.step_word(words);
  }
  EXPECT_EQ(counted.stats().replayed_lanes, counted.stats().lanes);
  EXPECT_EQ(counted.stats().audit_mismatches, 0u);
  EXPECT_EQ(counted.stats().replay_fraction(), 1.0);
}

TEST(BatchKernelTest, NarrowGuardReplaysOnlyBorderlineLanes) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  // Threshold at the fresh critical path: random patterns mostly settle
  // well below it, so a narrow guard replays only a fraction of lanes.
  const double period = critical_path_ps(m, test_tech());
  BatchTimingSim batch(m.netlist, test_tech());
  const std::vector<double> thresholds = {period};
  batch.set_timing_audit(thresholds, 0.05 * period);
  std::vector<std::uint64_t> words(m.netlist.input_nets().size());
  Rng rng(0xCAFE);
  for (int w = 0; w < 4; ++w) {
    std::fill(words.begin(), words.end(), 0);
    for (int l = 0; l < kBatchLanes; ++l) {
      batch.load_bus_lane(words, rng.next_bits(m.width), m.width,
                          m.a_first_input, l);
      batch.load_bus_lane(words, rng.next_bits(m.width), m.width,
                          m.b_first_input, l);
    }
    batch.step_word(words);
  }
  EXPECT_LT(batch.stats().replayed_lanes, batch.stats().lanes);
  EXPECT_EQ(batch.stats().audit_mismatches, 0u);
}

TEST(BatchKernelTest, InstallStateReproducesUninterruptedScalarStream) {
  // The primitive the replay audit rests on: install_state() + one step must
  // be bit-identical to the same step of an uninterrupted scalar run.
  const MultiplierNetlist m = build_row_bypass_multiplier(12);
  MultiplierSim reference(m, test_tech());
  Rng rng(0xBEEF);
  std::vector<std::uint64_t> a_ops(40), b_ops(40);
  for (std::size_t i = 0; i < a_ops.size(); ++i) {
    a_ops[i] = rng.next_bits(m.width);
    b_ops[i] = rng.next_bits(m.width);
    if (i + 1 < a_ops.size()) reference.apply(a_ops[i], b_ops[i]);
  }
  // Capture the state after 39 ops, install it into a fresh sim, and run
  // op 40 on both.
  std::vector<Logic> state(m.netlist.num_nets());
  for (std::size_t n = 0; n < state.size(); ++n) {
    state[n] = reference.timing_sim().value(static_cast<NetId>(n));
  }
  TimingSim resumed(m.netlist, test_tech());
  resumed.install_state(state, reference.timing_sim().steps());

  std::vector<Logic> inputs(m.netlist.input_nets().size());
  resumed.load_bus(inputs, a_ops.back(), m.width, m.a_first_input);
  resumed.load_bus(inputs, b_ops.back(), m.width, m.b_first_input);
  const StepResult r = resumed.step(inputs);
  const StepResult s = reference.apply(a_ops.back(), b_ops.back());
  EXPECT_EQ(s.output_settle_ps, r.output_settle_ps);
  EXPECT_EQ(s.settle_ps, r.settle_ps);
  EXPECT_EQ(s.toggles, r.toggles);
  EXPECT_EQ(s.switched_cap_ff, r.switched_cap_ff);
  for (std::size_t n = 0; n < state.size(); ++n) {
    const NetId net = static_cast<NetId>(n);
    ASSERT_EQ(reference.timing_sim().value(net), resumed.value(net));
  }
}

TEST(BatchKernelTest, TraceEqualityAcrossKernels) {
  // The layer above: compute_op_trace must emit the exact same OpTrace
  // vector whichever kernel runs it — plain, aged, and faulted.
  const std::size_t ops = 200;
  const BtiModel model = BtiModel::calibrated(test_tech());
  for (const auto arch :
       {MultiplierArch::kArray, MultiplierArch::kColumnBypass,
        MultiplierArch::kRowBypass, MultiplierArch::kWallaceTree}) {
    SCOPED_TRACE(arch_name(arch));
    const MultiplierNetlist m = build_multiplier(arch, 16);
    Rng pattern_rng(0x7EA7);
    const auto patterns = uniform_patterns(pattern_rng, m.width, ops);
    const AgingScenario scenario(m.netlist, test_tech(), model, 0x26F1, 200);
    const auto aged = scenario.delay_scales_at(3.0);
    FaultOverlay overlay(m.netlist.num_gates());
    overlay.add({.kind = FaultKind::kStuckAt0,
                 .gate = static_cast<GateId>(m.netlist.num_gates() / 2)});
    overlay.add({.kind = FaultKind::kTransient,
                 .gate = static_cast<GateId>(m.netlist.num_gates() / 3),
                 .cycle = 70});

    const FaultOverlay* overlay_cases[] = {nullptr, &overlay};
    for (const FaultOverlay* faults : overlay_cases) {
      for (const std::span<const double> aging :
           {std::span<const double>{}, std::span<const double>(aged)}) {
        TraceOptions sparse_opts{.gate_delay_scale = aging,
                                 .faults = faults,
                                 .kernel = SimKernel::kSparse};
        TraceOptions dense_opts = sparse_opts;
        dense_opts.kernel = SimKernel::kDense;
        BatchStats stats;
        TraceOptions batch_opts = sparse_opts;
        batch_opts.kernel = SimKernel::kBatch;
        batch_opts.batch_stats = &stats;
        batch_opts.batch_guard_ps = 0.0;  // audit off: pure batch path

        const auto sparse_trace =
            compute_op_trace(m, test_tech(), patterns, sparse_opts);
        const auto dense_trace =
            compute_op_trace(m, test_tech(), patterns, dense_opts);
        const auto batch_trace =
            compute_op_trace(m, test_tech(), patterns, batch_opts);
        ASSERT_EQ(sparse_trace, dense_trace);
        ASSERT_EQ(sparse_trace, batch_trace);
        EXPECT_EQ(stats.lanes, ops);
        EXPECT_EQ(stats.words, (ops + kBatchLanes - 1) / kBatchLanes);
      }
    }
  }
}

TEST(BatchKernelTest, TraceWithGuardedAuditStaysIdentical) {
  // Trace path with the audit armed around a realistic decision threshold:
  // replayed lanes adopt the scalar numbers, which must change nothing.
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  Rng pattern_rng(0x9A9A);
  const auto patterns = uniform_patterns(pattern_rng, m.width, 150);
  const double period = 0.55 * critical_path_ps(m, test_tech());
  const std::vector<double> thresholds = {period, 2.0 * period};

  const auto reference = compute_op_trace(m, test_tech(), patterns,
                                          TraceOptions{});
  BatchStats stats;
  TraceOptions opts{.kernel = SimKernel::kBatch,
                    .timing_audit_thresholds_ps = thresholds,
                    .batch_guard_ps = 0.02 * period,
                    .batch_stats = &stats};
  const auto audited = compute_op_trace(m, test_tech(), patterns, opts);
  EXPECT_EQ(reference, audited);
  EXPECT_EQ(stats.audit_mismatches, 0u);
}

TEST(BatchKernelTest, KernelEnvResolution) {
  EXPECT_EQ(resolve_kernel(SimKernel::kDense), SimKernel::kDense);
  EXPECT_EQ(resolve_kernel(SimKernel::kBatch), SimKernel::kBatch);
  {
    ScopedEnv scoped("AGINGSIM_KERNEL", "batch");
    EXPECT_EQ(resolve_kernel(SimKernel::kAuto), SimKernel::kBatch);
    // Explicit requests beat the environment.
    EXPECT_EQ(resolve_kernel(SimKernel::kSparse), SimKernel::kSparse);
  }
  {
    ScopedEnv scoped("AGINGSIM_KERNEL", "dense");
    EXPECT_EQ(resolve_kernel(SimKernel::kAuto), SimKernel::kDense);
  }
  {
    ScopedEnv scoped("AGINGSIM_KERNEL", "turbo");  // warns once, falls back
    EXPECT_EQ(resolve_kernel(SimKernel::kAuto), SimKernel::kSparse);
  }
  {
    ScopedEnv scoped("AGINGSIM_KERNEL", nullptr);
    EXPECT_EQ(resolve_kernel(SimKernel::kAuto), SimKernel::kSparse);
  }
}

TEST(BatchKernelTest, LaneBackendReportsAName) {
  const std::string backend = BatchTimingSim::lane_backend();
  EXPECT_TRUE(backend == "avx2" || backend == "generic") << backend;
}

}  // namespace
}  // namespace agingsim
