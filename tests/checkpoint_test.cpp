#include "src/runtime/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include "src/runtime/run_error.hpp"
#include "src/runtime/serial.hpp"

namespace agingsim::runtime {
namespace {

namespace fs = std::filesystem;

// --- serial.hpp primitives the checkpoint format is built on ------------

TEST(SerialTest, Crc32KnownVector) {
  // The IEEE 802.3 check value — pins the polynomial and reflection.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(SerialTest, ByteCodecRoundTripsBitExact) {
  ByteWriter w;
  w.u8(0x7F).u32(0xDEADBEEFu).u64(0x0123456789ABCDEFull).i64(-42);
  w.f64(0.1).f64(-0.0).boolean(true).str("hello\0world");
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0x7F);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(0.1));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello");  // C-string literal stops at the NUL
  EXPECT_NO_THROW(r.expect_end());
}

TEST(SerialTest, TruncatedReadThrowsCorrupt) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.data());
  r.u32();
  try {
    r.u32();
    FAIL() << "read past the end must throw";
  } catch (const RunError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kCorrupt);
  }
}

TEST(SerialTest, DigestSensitiveToOrderAndType) {
  const auto d = [](auto&&... vs) {
    Digest digest;
    (digest.mix(vs), ...);
    return digest.value();
  };
  EXPECT_NE(d(1, 2), d(2, 1));
  EXPECT_NE(d(std::string_view("ab"), std::string_view("c")),
            d(std::string_view("a"), std::string_view("bc")));
  EXPECT_EQ(d(0.5, 7), d(0.5, 7));
}

// --- CheckpointStore ----------------------------------------------------

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("agingsim_ckpt_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path unit_file(std::uint64_t unit) const {
    char name[32];
    std::snprintf(name, sizeof name, "unit-%06llu.ckpt",
                  static_cast<unsigned long long>(unit));
    return dir_ / name;
  }

  std::string read_file(const fs::path& p) const {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void write_file(const fs::path& p, const std::string& bytes) const {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  fs::path dir_;
};

TEST_F(CheckpointStoreTest, PersistLoadRoundTripIncludingNulBytes) {
  const std::string payload("bit-\0exact\xFF payload", 18);
  {
    CheckpointStore store(dir_, 0xD1CE5);
    store.persist(3, payload);
    store.persist(7, "seven");
  }
  CheckpointStore store(dir_, 0xD1CE5);
  const CheckpointScan scan = store.load();
  EXPECT_EQ(scan.loaded, 2u);
  EXPECT_EQ(scan.discarded, 0u);
  EXPECT_EQ(store.restore(3), payload);
  EXPECT_EQ(store.restore(7), "seven");
  EXPECT_FALSE(store.restore(4).has_value());
  EXPECT_TRUE(store.has(7));
  EXPECT_EQ(store.size(), 2u);
}

TEST_F(CheckpointStoreTest, PersistLeavesNoTempFiles) {
  CheckpointStore store(dir_, 1);
  store.persist(0, "x");
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

TEST_F(CheckpointStoreTest, ConcurrentStoresOnSameDirNeverTearFiles) {
  // Two identically-configured campaigns can race on the same digest-keyed
  // directory. Each writer's tmp file is unique, so neither can truncate
  // the other mid-write and rename a torn file into place: every .ckpt
  // that lands must validate (magic + CRC) and hold one writer's payload
  // intact.
  const std::string a(64 * 1024, 'a');
  const std::string b(64 * 1024, 'b');
  CheckpointStore first(dir_, 0xD16);
  CheckpointStore second(dir_, 0xD16);
  std::thread ta([&] {
    for (int i = 0; i < 20; ++i) first.persist(1, a);
  });
  std::thread tb([&] {
    for (int i = 0; i < 20; ++i) second.persist(1, b);
  });
  ta.join();
  tb.join();

  CheckpointStore reader(dir_, 0xD16);
  const CheckpointScan scan = reader.load();
  EXPECT_EQ(scan.discarded, 0u) << "a torn or orphaned file survived";
  ASSERT_EQ(scan.loaded, 1u);
  const std::optional<std::string> got = reader.restore(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(*got == a || *got == b) << "interleaved payloads";
}

TEST_F(CheckpointStoreTest, ClearRemovesUnitFiles) {
  CheckpointStore store(dir_, 1);
  store.persist(0, "x");
  store.persist(1, "y");
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  CheckpointStore fresh(dir_, 1);
  EXPECT_EQ(fresh.load().loaded, 0u);
}

// Each corruption case must degrade to "discard + re-run", never to a
// crash or a silently wrong payload: the scan reports one discarded file,
// the file is gone from disk, and a subsequent persist works normally.
TEST_F(CheckpointStoreTest, TruncatedFileIsDiscarded) {
  {
    CheckpointStore store(dir_, 9);
    store.persist(0, "some payload bytes");
  }
  const std::string bytes = read_file(unit_file(0));
  write_file(unit_file(0), bytes.substr(0, bytes.size() - 5));

  CheckpointStore store(dir_, 9);
  testing::internal::CaptureStderr();
  const CheckpointScan scan = store.load();
  const std::string diag = testing::internal::GetCapturedStderr();
  EXPECT_EQ(scan.loaded, 0u);
  EXPECT_EQ(scan.discarded, 1u);
  EXPECT_NE(diag.find("truncated"), std::string::npos) << diag;
  EXPECT_NE(diag.find("re-run"), std::string::npos) << diag;
  EXPECT_FALSE(fs::exists(unit_file(0)));
  store.persist(0, "fresh");  // clean re-run persists over the wreckage
  EXPECT_EQ(store.restore(0), "fresh");
}

TEST_F(CheckpointStoreTest, PayloadCrcMismatchIsDiscarded) {
  {
    CheckpointStore store(dir_, 9);
    store.persist(0, "some payload bytes");
  }
  std::string bytes = read_file(unit_file(0));
  bytes[bytes.size() - 1] ^= 0x01;  // flip one payload bit
  write_file(unit_file(0), bytes);

  CheckpointStore store(dir_, 9);
  testing::internal::CaptureStderr();
  const CheckpointScan scan = store.load();
  const std::string diag = testing::internal::GetCapturedStderr();
  EXPECT_EQ(scan.discarded, 1u);
  EXPECT_NE(diag.find("CRC mismatch"), std::string::npos) << diag;
  EXPECT_FALSE(fs::exists(unit_file(0)));
}

TEST_F(CheckpointStoreTest, FormatVersionSkewIsDiscarded) {
  {
    CheckpointStore store(dir_, 9);
    store.persist(0, "payload");
  }
  std::string bytes = read_file(unit_file(0));
  bytes[4] = static_cast<char>(CheckpointStore::kFormatVersion + 1);
  write_file(unit_file(0), bytes);

  CheckpointStore store(dir_, 9);
  testing::internal::CaptureStderr();
  const CheckpointScan scan = store.load();
  const std::string diag = testing::internal::GetCapturedStderr();
  EXPECT_EQ(scan.discarded, 1u);
  EXPECT_NE(diag.find("format version skew"), std::string::npos) << diag;
}

TEST_F(CheckpointStoreTest, ConfigDigestMismatchIsDiscarded) {
  {
    CheckpointStore store(dir_, 0xAAAA);
    store.persist(0, "payload");
  }
  CheckpointStore store(dir_, 0xBBBB);  // different campaign configuration
  testing::internal::CaptureStderr();
  const CheckpointScan scan = store.load();
  const std::string diag = testing::internal::GetCapturedStderr();
  EXPECT_EQ(scan.loaded, 0u);
  EXPECT_EQ(scan.discarded, 1u);
  EXPECT_NE(diag.find("config digest mismatch"), std::string::npos) << diag;
}

TEST_F(CheckpointStoreTest, BadMagicIsDiscardedAndForeignFilesKept) {
  CheckpointStore setup(dir_, 9);
  setup.persist(0, "payload");
  write_file(dir_ / "unit-000001.ckpt", "not a checkpoint at all");
  write_file(dir_ / "notes.txt", "operator notes survive");
  write_file(dir_ / "unit-000002.ckpt.tmp", "torn write");

  CheckpointStore store(dir_, 9);
  testing::internal::CaptureStderr();
  const CheckpointScan scan = store.load();
  testing::internal::GetCapturedStderr();
  EXPECT_EQ(scan.loaded, 1u);
  EXPECT_EQ(scan.discarded, 2u);  // bad magic + orphaned .tmp
  EXPECT_TRUE(fs::exists(dir_ / "notes.txt"));
  EXPECT_FALSE(fs::exists(dir_ / "unit-000002.ckpt.tmp"));
}

TEST_F(CheckpointStoreTest, UnusableDirectoryThrowsPermanent) {
  write_file(dir_.parent_path() / "agingsim_ckpt_file_in_the_way", "x");
  const fs::path blocked =
      dir_.parent_path() / "agingsim_ckpt_file_in_the_way" / "sub";
  try {
    CheckpointStore store(blocked, 1);
    FAIL() << "directory creation through a file must throw";
  } catch (const RunError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kPermanent);
  }
  fs::remove(dir_.parent_path() / "agingsim_ckpt_file_in_the_way");
}

}  // namespace
}  // namespace agingsim::runtime
