#include "src/workload/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace agingsim {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    EXPECT_EQ(r.next_below(1), 0u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBitsMasksWidth) {
  Rng r(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(r.next_bits(5), 32u);
    EXPECT_LE(r.next_bits(16), 0xFFFFu);
  }
  // width 64 must be able to exceed 32-bit range eventually.
  Rng r64(10);
  bool big = false;
  for (int i = 0; i < 64 && !big; ++i) big = r64.next_bits(64) > 0xFFFFFFFFull;
  EXPECT_TRUE(big);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(13);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(RngTest, BitBalance) {
  Rng r(17);
  int ones = 0;
  for (int i = 0; i < 1000; ++i) ones += __builtin_popcountll(r.next());
  // 64000 bits, expect ~32000 ones.
  EXPECT_NEAR(static_cast<double>(ones), 32000.0, 800.0);
}

}  // namespace
}  // namespace agingsim
