// Monte-Carlo campaign engine contracts (src/mc/): byte-identical JSON for
// any thread count, byte-identical resume after a simulated kill, bit-exact
// block codec, and the statistical invariants the CI job asserts on the
// real artifact (band ordering, aging monotonicity, surface shape).

#include "src/mc/mc_campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>

#include "bench/common.hpp"
#include "src/mc/mc_report.hpp"
#include "src/report/json.hpp"
#include "src/runtime/checkpoint.hpp"
#include "src/runtime/robust_runner.hpp"
#include "src/runtime/run_error.hpp"

namespace agingsim::mc {
namespace {

namespace fs = std::filesystem;

class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    if (const char* old = std::getenv("AGINGSIM_THREADS")) old_ = old;
    ::setenv("AGINGSIM_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (old_.has_value()) {
      ::setenv("AGINGSIM_THREADS", old_->c_str(), 1);
    } else {
      ::unsetenv("AGINGSIM_THREADS");
    }
  }

 private:
  std::optional<std::string> old_;
};

/// Small-but-not-trivial campaign: 3 blocks of unequal final size, two
/// evaluation years, stratification narrower than the trial count.
McCampaignConfig small_config() {
  McCampaignConfig cfg;
  cfg.width = 8;
  cfg.arches = {MultiplierArch::kColumnBypass};
  cfg.trials = 10;
  cfg.block = 4;  // blocks of 4, 4, 2
  cfg.ops = 24;
  cfg.strata = 4;
  return cfg;
}

std::string campaign_json(const McCampaign& campaign, const McResult& result) {
  JsonWriter json;
  json.begin_object();
  write_mc_json(json, campaign.config(), result, McReportOptions{});
  json.end_object();
  return json.str();
}

TEST(McCampaignTest, JsonIsByteIdenticalAcrossThreadCounts) {
  const McCampaign campaign(bench::tech(), small_config());
  std::string json1, json8;
  {
    ScopedThreadsEnv scoped("1");
    json1 = campaign_json(campaign, campaign.run());
  }
  {
    ScopedThreadsEnv scoped("8");
    json8 = campaign_json(campaign, campaign.run());
  }
  EXPECT_EQ(json1, json8);
}

TEST(McCampaignTest, RobustRunnerMatchesPlainPath) {
  const McCampaign campaign(bench::tech(), small_config());
  const std::string plain = campaign_json(campaign, campaign.run());
  runtime::RunnerConfig config;
  config.max_retries = 0;
  runtime::RobustRunner runner(config);
  runtime::RunReport report;
  const std::string robust = campaign_json(
      campaign, campaign.run(McRunOptions{.runner = &runner,
                                          .report = &report}));
  EXPECT_EQ(plain, robust);
  EXPECT_TRUE(report.all_ok());
}

TEST(McCampaignTest, KillAndResumeIsByteIdentical) {
  const fs::path dir =
      fs::temp_directory_path() / "agingsim_mc_resume_test";
  fs::remove_all(dir);
  const McCampaign campaign(bench::tech(), small_config());
  const std::uint64_t digest = campaign.config_digest();
  ASSERT_EQ(campaign.num_units(), 3u);

  // Golden uninterrupted run, all 3 units checkpointed.
  std::string golden;
  {
    runtime::CheckpointStore store(dir, digest);
    store.load();
    runtime::RunnerConfig config;
    config.checkpoints = &store;
    runtime::RobustRunner runner(config);
    golden = campaign_json(campaign, campaign.run(
                                         McRunOptions{.runner = &runner}));
  }

  // "Kill" after the first unit: drop the checkpoints of units 1 and 2.
  ASSERT_TRUE(fs::remove(dir / "unit-000001.ckpt"));
  ASSERT_TRUE(fs::remove(dir / "unit-000002.ckpt"));

  // Resume restores unit 0 and recomputes the rest — byte-identical JSON.
  {
    ScopedThreadsEnv scoped("8");
    runtime::CheckpointStore store(dir, digest);
    ASSERT_EQ(store.load().loaded, 1u);
    runtime::RunnerConfig config;
    config.checkpoints = &store;
    runtime::RobustRunner runner(config);
    const std::string resumed = campaign_json(
        campaign, campaign.run(McRunOptions{.runner = &runner}));
    EXPECT_EQ(golden, resumed);
  }
  fs::remove_all(dir);
}

TEST(McCampaignTest, BlockCodecRoundTripsBitExactly) {
  const McCampaign campaign(bench::tech(), small_config());
  for (std::size_t block = 0; block < campaign.blocks_per_arch(); ++block) {
    const auto records = campaign.compute_block(0, block);
    EXPECT_EQ(decode_mc_block(encode_mc_block(records)), records);
  }
  EXPECT_TRUE(decode_mc_block(encode_mc_block({})).empty());
  // Truncated payloads are corrupt, not garbage records.
  const std::string payload = encode_mc_block(campaign.compute_block(0, 0));
  EXPECT_THROW(decode_mc_block(payload.substr(0, payload.size() - 1)),
               runtime::RunError);
  EXPECT_THROW(decode_mc_block(payload + "x"), runtime::RunError);
}

TEST(McCampaignTest, BandsOrderedAndAgingMonotone) {
  McCampaignConfig cfg = small_config();
  cfg.trials = 24;
  const McCampaign campaign(bench::tech(), cfg);
  const McResult result = campaign.run();
  ASSERT_EQ(result.arches.size(), 1u);
  const McArchResult& arch = result.arches[0];
  const std::size_t years = cfg.years.size();
  EXPECT_EQ(arch.trials_completed(years),
            static_cast<std::uint64_t>(cfg.trials));
  EXPECT_EQ(arch.trials_quarantined, 0u);
  EXPECT_GT(arch.fresh_critical_path_ps, 0.0);

  for (std::size_t y = 0; y < years; ++y) {
    const QuantileBand delay = delay_band(arch, years, y);
    EXPECT_GT(delay.p50, 0.0);
    EXPECT_LE(delay.p50, delay.p99);
    EXPECT_LE(delay.p99, delay.p99_99);
    const QuantileBand errors = error_band(arch, years, y);
    EXPECT_LE(errors.p50, errors.p99);
    EXPECT_LE(errors.p99, errors.p99_99);
  }

  // Aging only slows a die down: every per-trial scale at year 7 dominates
  // its year-0 counterpart (variation is shared, degradation >= 0), so the
  // per-trial max delay — and hence each band — is monotone in years.
  for (std::size_t t = 0; t < arch.trials_completed(years); ++t) {
    EXPECT_GE(arch.records[t * years + 1].max_delay_ps,
              arch.records[t * years + 0].max_delay_ps);
  }
}

TEST(McCampaignTest, FailureSurfaceIsMonotoneNonIncreasing) {
  McCampaignConfig cfg = small_config();
  cfg.trials = 24;
  const McCampaign campaign(bench::tech(), cfg);
  const McResult result = campaign.run();
  const FailureSurface surface =
      failure_surface(result.arches[0], cfg.years.size(),
                      cfg.years.size() - 1, 0.95, 1.05, 15);
  ASSERT_EQ(surface.period_ps.size(), 15u);
  ASSERT_EQ(surface.failure_probability.size(), 15u);
  for (std::size_t k = 1; k < surface.period_ps.size(); ++k) {
    EXPECT_GT(surface.period_ps[k], surface.period_ps[k - 1]);
    EXPECT_LE(surface.failure_probability[k],
              surface.failure_probability[k - 1]);
  }
  // Population-anchored axis: the sweep spans the whole 1 -> 0 transition.
  EXPECT_DOUBLE_EQ(surface.failure_probability.front(), 1.0);
  EXPECT_DOUBLE_EQ(surface.failure_probability.back(), 0.0);
}

TEST(McCampaignTest, DigestTracksSamplingConfigButNotKernel) {
  McCampaignConfig cfg = small_config();
  const McCampaign base(bench::tech(), cfg);

  McCampaignConfig other_kernel = cfg;
  other_kernel.kernel = SimKernel::kSparse;
  EXPECT_EQ(base.config_digest(),
            McCampaign(bench::tech(), other_kernel).config_digest());

  McCampaignConfig other_seed = cfg;
  other_seed.seed ^= 1;
  EXPECT_NE(base.config_digest(),
            McCampaign(bench::tech(), other_seed).config_digest());

  McCampaignConfig other_sigma = cfg;
  other_sigma.variation.sigma_grid += 0.01;
  EXPECT_NE(base.config_digest(),
            McCampaign(bench::tech(), other_sigma).config_digest());
}

TEST(McCampaignTest, KernelsAgreeBitExactly) {
  McCampaignConfig batch = small_config();
  batch.kernel = SimKernel::kBatch;
  McCampaignConfig sparse = small_config();
  sparse.kernel = SimKernel::kSparse;
  const McCampaign a(bench::tech(), batch);
  const McCampaign b(bench::tech(), sparse);
  EXPECT_EQ(a.compute_block(0, 0), b.compute_block(0, 0));
}

TEST(McCampaignTest, RejectsDegenerateConfigs) {
  const auto reject = [](auto mutate) {
    McCampaignConfig cfg = small_config();
    mutate(cfg);
    EXPECT_THROW(McCampaign(bench::tech(), cfg), std::invalid_argument);
  };
  reject([](McCampaignConfig& c) { c.trials = 0; });
  reject([](McCampaignConfig& c) { c.block = 0; });
  reject([](McCampaignConfig& c) { c.ops = 0; });
  reject([](McCampaignConfig& c) { c.strata = 0; });
  reject([](McCampaignConfig& c) { c.arches.clear(); });
  reject([](McCampaignConfig& c) { c.years.clear(); });
  reject([](McCampaignConfig& c) { c.period_frac = 0.0; });
}

}  // namespace
}  // namespace agingsim::mc
