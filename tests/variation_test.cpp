#include "src/aging/variation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/multiplier/multiplier.hpp"
#include "src/sim/sta.hpp"

namespace agingsim {
namespace {

TEST(VariationTest, ZeroSigmaIsIdentity) {
  const auto m = build_array_multiplier(8);
  const auto scales = process_variation_scales(m.netlist, 0.0, 1);
  ASSERT_EQ(scales.size(), m.netlist.num_gates());
  for (double s : scales) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(VariationTest, DeterministicPerSeed) {
  const auto m = build_array_multiplier(8);
  const auto a = process_variation_scales(m.netlist, 0.05, 7);
  const auto b = process_variation_scales(m.netlist, 0.05, 7);
  const auto c = process_variation_scales(m.netlist, 0.05, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(VariationTest, LognormalStatistics) {
  const auto m = build_array_multiplier(16);  // ~1.4k gates: decent sample
  const double sigma = 0.08;
  const auto scales = process_variation_scales(m.netlist, sigma, 3);
  double mean_log = 0.0, var_log = 0.0;
  for (double s : scales) mean_log += std::log(s);
  mean_log /= static_cast<double>(scales.size());
  for (double s : scales) {
    const double d = std::log(s) - mean_log;
    var_log += d * d;
  }
  var_log /= static_cast<double>(scales.size());
  EXPECT_NEAR(mean_log, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(var_log), sigma, 0.01);
  for (double s : scales) EXPECT_GT(s, 0.0);
}

TEST(VariationTest, VariationWidensCriticalPathSpread) {
  // Monte-Carlo corner study: with variation the worst-die critical path
  // exceeds nominal — the guard-band a fixed design must pay.
  const auto m = build_array_multiplier(8);
  const TechLibrary& t = default_tech_library();
  const double nominal = run_sta(m.netlist, t).critical_path_ps;
  double worst = 0.0;
  for (std::uint64_t die = 0; die < 20; ++die) {
    const auto scales = process_variation_scales(m.netlist, 0.08, die);
    worst = std::max(worst,
                     run_sta(m.netlist, t, scales).critical_path_ps);
  }
  EXPECT_GT(worst, nominal);
}

TEST(VariationTest, CombineScalesMultipliesElementwise) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 0.5, 1.0};
  const auto c = combine_scales({a, b});
  EXPECT_EQ(c, (std::vector<double>{2.0, 1.0, 3.0}));
  // Empty overlays are identity.
  EXPECT_EQ(combine_scales({{}, a, {}}), a);
  EXPECT_TRUE(combine_scales({}).empty());
  const std::vector<double> wrong = {1.0};
  EXPECT_THROW(combine_scales({a, wrong}), std::invalid_argument);
}

TEST(VariationTest, RejectsNegativeSigma) {
  const auto m = build_array_multiplier(4);
  EXPECT_THROW(process_variation_scales(m.netlist, -0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(correlated_variation_scales(m.netlist, {.sigma_grid = -0.1}, 1),
               std::invalid_argument);
  EXPECT_THROW(
      correlated_variation_scales(m.netlist, {.grid_levels = 0}, 1),
      std::invalid_argument);
  EXPECT_THROW(stochastic_aging_scales(std::vector<double>{1.1}, -0.1, 1),
               std::invalid_argument);
}

TEST(VariationTest, CorrelatedScalesMedianNearOne) {
  // Every lognormal component has log-mean 0, so the nominal netlist is the
  // median die. Kill the die-to-die shift (the one term shared by all
  // gates) and the per-gate log-mean must sit near 0.
  const auto m = build_array_multiplier(16);
  const auto scales =
      correlated_variation_scales(m.netlist, VariationModel{}, 11, 0.0);
  ASSERT_EQ(scales.size(), m.netlist.num_gates());
  double mean_log = 0.0;
  for (double s : scales) {
    EXPECT_GT(s, 0.0);
    mean_log += std::log(s);
  }
  mean_log /= static_cast<double>(scales.size());
  EXPECT_NEAR(mean_log, 0.0, 0.05);
}

TEST(VariationTest, DieZOverrideShiftsEveryGateUniformly) {
  // Same seed, different die_z: the grid + random fields are unchanged
  // (the overridden draw is still consumed), so each gate moves by exactly
  // exp(sigma_die * dz).
  const auto m = build_array_multiplier(8);
  const VariationModel model;
  const auto base = correlated_variation_scales(m.netlist, model, 5, 0.0);
  const auto slow = correlated_variation_scales(m.netlist, model, 5, 2.0);
  const double expected = std::exp(model.sigma_die * 2.0);
  for (std::size_t g = 0; g < base.size(); ++g) {
    EXPECT_NEAR(slow[g] / base[g], expected, 1e-12);
  }
}

TEST(VariationTest, StochasticAgingPreservesFreshGates) {
  // Jitter multiplies the degradation (base - 1), so a fresh overlay is a
  // fixed point and an aged gate never rejuvenates below 1.
  const std::vector<double> fresh(64, 1.0);
  EXPECT_EQ(stochastic_aging_scales(fresh, 0.25, 9), fresh);
  std::vector<double> aged(64);
  for (std::size_t g = 0; g < aged.size(); ++g) {
    aged[g] = 1.0 + 0.001 * static_cast<double>(g + 1);
  }
  EXPECT_EQ(stochastic_aging_scales(aged, 0.0, 9), aged);
  const auto jittered = stochastic_aging_scales(aged, 0.25, 9);
  for (std::size_t g = 0; g < aged.size(); ++g) {
    EXPECT_GT(jittered[g], 1.0);
    EXPECT_NE(jittered[g], aged[g]);
  }
}

TEST(VariationTest, StochasticAgingSeedIsAPerDieTrait) {
  // One seed = one die: doubling every gate's degradation doubles the
  // jittered degradation exactly, so a fast-aging die at year 1 is the
  // same fast-aging die at year 7.
  std::vector<double> year1(32), year7(32);
  for (std::size_t g = 0; g < year1.size(); ++g) {
    year1[g] = 1.0 + 0.01 * static_cast<double>(g + 1);
    year7[g] = 1.0 + 0.02 * static_cast<double>(g + 1);
  }
  const auto j1 = stochastic_aging_scales(year1, 0.3, 77);
  const auto j7 = stochastic_aging_scales(year7, 0.3, 77);
  for (std::size_t g = 0; g < j1.size(); ++g) {
    EXPECT_NEAR((j7[g] - 1.0) / (j1[g] - 1.0), 2.0, 1e-9);
  }
}

TEST(VariationTest, AccumulateScalesInPlace) {
  std::vector<double> acc;
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 0.5, 1.0};
  accumulate_scales(acc, a);  // empty acc adopts the overlay
  EXPECT_EQ(acc, a);
  accumulate_scales(acc, b);
  EXPECT_EQ(acc, (std::vector<double>{2.0, 1.0, 3.0}));
  accumulate_scales(acc, {});  // empty overlay is identity
  EXPECT_EQ(acc, (std::vector<double>{2.0, 1.0, 3.0}));
  const std::vector<double> wrong = {1.0};
  EXPECT_THROW(accumulate_scales(acc, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
