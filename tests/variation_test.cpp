#include "src/aging/variation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/multiplier/multiplier.hpp"
#include "src/sim/sta.hpp"

namespace agingsim {
namespace {

TEST(VariationTest, ZeroSigmaIsIdentity) {
  const auto m = build_array_multiplier(8);
  const auto scales = process_variation_scales(m.netlist, 0.0, 1);
  ASSERT_EQ(scales.size(), m.netlist.num_gates());
  for (double s : scales) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(VariationTest, DeterministicPerSeed) {
  const auto m = build_array_multiplier(8);
  const auto a = process_variation_scales(m.netlist, 0.05, 7);
  const auto b = process_variation_scales(m.netlist, 0.05, 7);
  const auto c = process_variation_scales(m.netlist, 0.05, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(VariationTest, LognormalStatistics) {
  const auto m = build_array_multiplier(16);  // ~1.4k gates: decent sample
  const double sigma = 0.08;
  const auto scales = process_variation_scales(m.netlist, sigma, 3);
  double mean_log = 0.0, var_log = 0.0;
  for (double s : scales) mean_log += std::log(s);
  mean_log /= static_cast<double>(scales.size());
  for (double s : scales) {
    const double d = std::log(s) - mean_log;
    var_log += d * d;
  }
  var_log /= static_cast<double>(scales.size());
  EXPECT_NEAR(mean_log, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(var_log), sigma, 0.01);
  for (double s : scales) EXPECT_GT(s, 0.0);
}

TEST(VariationTest, VariationWidensCriticalPathSpread) {
  // Monte-Carlo corner study: with variation the worst-die critical path
  // exceeds nominal — the guard-band a fixed design must pay.
  const auto m = build_array_multiplier(8);
  const TechLibrary& t = default_tech_library();
  const double nominal = run_sta(m.netlist, t).critical_path_ps;
  double worst = 0.0;
  for (std::uint64_t die = 0; die < 20; ++die) {
    const auto scales = process_variation_scales(m.netlist, 0.08, die);
    worst = std::max(worst,
                     run_sta(m.netlist, t, scales).critical_path_ps);
  }
  EXPECT_GT(worst, nominal);
}

TEST(VariationTest, CombineScalesMultipliesElementwise) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 0.5, 1.0};
  const auto c = combine_scales({a, b});
  EXPECT_EQ(c, (std::vector<double>{2.0, 1.0, 3.0}));
  // Empty overlays are identity.
  EXPECT_EQ(combine_scales({{}, a, {}}), a);
  EXPECT_TRUE(combine_scales({}).empty());
  const std::vector<double> wrong = {1.0};
  EXPECT_THROW(combine_scales({a, wrong}), std::invalid_argument);
}

TEST(VariationTest, RejectsNegativeSigma) {
  const auto m = build_array_multiplier(4);
  EXPECT_THROW(process_variation_scales(m.netlist, -0.1, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
