#include "src/core/aging_indicator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace agingsim {
namespace {

AgingIndicatorConfig cfg(int window, double thresh, bool sticky = true) {
  AgingIndicatorConfig c;
  c.window_ops = window;
  c.error_threshold = thresh;
  c.sticky = sticky;
  return c;
}

TEST(AgingIndicatorTest, StartsHealthy) {
  AgingIndicator ind(cfg(100, 0.10));
  EXPECT_FALSE(ind.aged());
  EXPECT_EQ(ind.windows_completed(), 0u);
}

TEST(AgingIndicatorTest, TripsAtPaperThreshold) {
  // 10% of 100 ops => the 10th error trips the indicator.
  AgingIndicator ind(cfg(100, 0.10));
  for (int i = 0; i < 9; ++i) ind.record(true);
  EXPECT_FALSE(ind.aged());
  ind.record(true);
  EXPECT_TRUE(ind.aged());
  EXPECT_EQ(ind.trips(), 1u);
}

TEST(AgingIndicatorTest, ErrorsBelowThresholdNeverTrip) {
  AgingIndicator ind(cfg(100, 0.10));
  // 9 errors per 100 ops forever: never trips.
  for (int w = 0; w < 20; ++w) {
    for (int i = 0; i < 100; ++i) ind.record(i < 9);
    EXPECT_FALSE(ind.aged()) << "window " << w;
  }
  EXPECT_EQ(ind.windows_completed(), 20u);
}

TEST(AgingIndicatorTest, WindowResetClearsCount) {
  AgingIndicator ind(cfg(10, 0.50));
  // 4 errors then 6 clean ops: window closes below threshold (5).
  for (int i = 0; i < 4; ++i) ind.record(true);
  for (int i = 0; i < 6; ++i) ind.record(false);
  EXPECT_FALSE(ind.aged());
  // 4 more errors in the next window still do not trip.
  for (int i = 0; i < 4; ++i) ind.record(true);
  EXPECT_FALSE(ind.aged());
  ind.record(true);  // 5th error in this window
  EXPECT_TRUE(ind.aged());
}

TEST(AgingIndicatorTest, StickyStaysTripped) {
  AgingIndicator ind(cfg(10, 0.10, /*sticky=*/true));
  ind.record(true);
  EXPECT_TRUE(ind.aged());
  for (int i = 0; i < 50; ++i) ind.record(false);
  EXPECT_TRUE(ind.aged());
}

TEST(AgingIndicatorTest, NonStickyRecoversAfterCleanWindow) {
  AgingIndicator ind(cfg(10, 0.10, /*sticky=*/false));
  ind.record(true);
  EXPECT_TRUE(ind.aged());
  for (int i = 0; i < 9; ++i) ind.record(false);  // window closes: 1 error >= 1 => still aged
  EXPECT_TRUE(ind.aged());
  for (int i = 0; i < 10; ++i) ind.record(false);  // clean window
  EXPECT_FALSE(ind.aged());
}

TEST(AgingIndicatorTest, ResetRestoresInitialState) {
  AgingIndicator ind(cfg(10, 0.10));
  ind.record(true);
  EXPECT_TRUE(ind.aged());
  ind.reset();
  EXPECT_FALSE(ind.aged());
  EXPECT_EQ(ind.trips(), 0u);
  EXPECT_EQ(ind.windows_completed(), 0u);
}

TEST(AgingIndicatorTest, ConfigValidation) {
  EXPECT_THROW(AgingIndicator(cfg(0, 0.1)), std::invalid_argument);
  EXPECT_THROW(AgingIndicator(cfg(10, 0.0)), std::invalid_argument);
  EXPECT_THROW(AgingIndicator(cfg(10, 1.5)), std::invalid_argument);
  EXPECT_NO_THROW(AgingIndicator(cfg(10, 1.0)));
}

}  // namespace
}  // namespace agingsim
