// Differential tests of the event-driven (sparse) step kernel against the
// dense full-sweep kernel. The contract is *bit-identical* observable state
// — StepResult timing/energy fields, every net value and every arrival —
// across plain runs, aging overlays and all fault kinds, plus the dense
// fallbacks around power-up, overlay swaps and transient windows. See
// docs/PERF.md for why identity (not just tolerance) is achievable.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "src/aging/scenario.hpp"
#include "src/core/calibration.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/workload/rng.hpp"

namespace agingsim {
namespace {

const TechLibrary& test_tech() {
  static const TechLibrary t = calibrated_tech_library(1880.0);
  return t;
}

struct KernelTotals {
  std::uint64_t sparse_evaluated = 0;
  std::uint64_t gates_total = 0;  // summed over steps
};

/// Drives a dense and a sparse simulator in lockstep over `ops` random
/// operand pairs and requires bit-identical observable state after every
/// step. Evaluation totals land in `out` (if given) for sparsity checks.
void expect_kernels_identical(const MultiplierNetlist& m, std::size_t ops,
                              const FaultOverlay* overlay = nullptr,
                              std::span<const double> aging = {},
                              KernelTotals* out = nullptr,
                              std::uint64_t seed = 0xD1FF) {
  MultiplierSim dense(m, test_tech(), aging);
  MultiplierSim sparse(m, test_tech(), aging);
  dense.set_mode(TimingSim::Mode::kDense);
  sparse.set_mode(TimingSim::Mode::kSparse);
  if (overlay != nullptr) {
    dense.set_fault_overlay(overlay);
    sparse.set_fault_overlay(overlay);
  }

  KernelTotals totals;
  Rng rng(seed);
  const std::size_t num_nets = m.netlist.num_nets();
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t a = rng.next_bits(m.width);
    const std::uint64_t b = rng.next_bits(m.width);
    const StepResult d = dense.apply(a, b);
    const StepResult s = sparse.apply(a, b);

    // Exact equality on purpose: the kernels promise identity, not
    // closeness. gates_evaluated/gates_total are diagnostics and excluded.
    ASSERT_EQ(d.output_settle_ps, s.output_settle_ps) << "step " << i;
    ASSERT_EQ(d.settle_ps, s.settle_ps) << "step " << i;
    ASSERT_EQ(d.toggles, s.toggles) << "step " << i;
    ASSERT_EQ(d.switched_cap_ff, s.switched_cap_ff) << "step " << i;
    ASSERT_EQ(d.gates_total, s.gates_total);
    ASSERT_EQ(d.gates_evaluated, d.gates_total)
        << "dense kernel must touch every gate";

    for (std::size_t n = 0; n < num_nets; ++n) {
      const NetId net = static_cast<NetId>(n);
      if (dense.timing_sim().value(net) != sparse.timing_sim().value(net) ||
          dense.timing_sim().arrival(net) !=
              sparse.timing_sim().arrival(net)) {
        ADD_FAILURE() << "net " << n << " diverged at step " << i;
        return;
      }
    }
    totals.sparse_evaluated += s.gates_evaluated;
    totals.gates_total += s.gates_total;
  }
  if (out != nullptr) *out = totals;
}

TEST(SparseKernelTest, MatchesDenseOnRandomPatterns) {
  for (const auto arch :
       {MultiplierArch::kArray, MultiplierArch::kColumnBypass,
        MultiplierArch::kRowBypass}) {
    SCOPED_TRACE(arch_name(arch));
    const MultiplierNetlist m = build_multiplier(arch, 16);
    KernelTotals t;
    expect_kernels_identical(m, 1000, nullptr, {}, &t);
    // The whole point: the changed cone is a strict subset of the netlist.
    EXPECT_LT(t.sparse_evaluated, t.gates_total);
    EXPECT_GT(t.sparse_evaluated, 0u);
  }
}

TEST(SparseKernelTest, MatchesDenseUnderAgingOverlay) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  const BtiModel model = BtiModel::calibrated(test_tech());
  const AgingScenario scenario(m.netlist, test_tech(), model, 0x26F1, 200);
  const auto scales = scenario.delay_scales_at(5.0);
  expect_kernels_identical(m, 400, nullptr, scales);
}

TEST(SparseKernelTest, MatchesDenseUnderStuckAtFaults) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  const std::size_t g = m.netlist.num_gates();
  FaultOverlay overlay(g);
  overlay.add({.kind = FaultKind::kStuckAt0, .gate = static_cast<GateId>(g / 3)});
  overlay.add(
      {.kind = FaultKind::kStuckAt1, .gate = static_cast<GateId>(2 * g / 3)});
  expect_kernels_identical(m, 400, &overlay);
}

TEST(SparseKernelTest, MatchesDenseAcrossTransientWindows) {
  const MultiplierNetlist m = build_row_bypass_multiplier(16);
  FaultOverlay overlay(m.netlist.num_gates());
  // Strikes scattered through the run, including back-to-back cycles (the
  // flip and un-flip sweeps overlap) and the very first post-install step.
  overlay.add({.kind = FaultKind::kTransient,
               .gate = static_cast<GateId>(m.netlist.num_gates() / 2),
               .cycle = 0});
  overlay.add({.kind = FaultKind::kTransient,
               .gate = static_cast<GateId>(m.netlist.num_gates() / 4),
               .cycle = 57});
  overlay.add({.kind = FaultKind::kTransient,
               .gate = static_cast<GateId>(m.netlist.num_gates() / 5),
               .cycle = 58});
  expect_kernels_identical(m, 400, &overlay);
}

TEST(SparseKernelTest, MatchesDenseUnderDelayOutliers) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  FaultOverlay overlay(m.netlist.num_gates());
  overlay.add({.kind = FaultKind::kDelayOutlier,
               .gate = static_cast<GateId>(m.netlist.num_gates() - 10),
               .delay_factor = 4.0});
  expect_kernels_identical(m, 400, &overlay);
}

TEST(SparseKernelTest, OverlaySwapMidRunForcesConsistentState) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  FaultOverlay overlay(m.netlist.num_gates());
  overlay.add({.kind = FaultKind::kStuckAt1,
               .gate = static_cast<GateId>(m.netlist.num_gates() / 2)});

  MultiplierSim dense(m, test_tech());
  MultiplierSim sparse(m, test_tech());
  dense.set_mode(TimingSim::Mode::kDense);
  sparse.set_mode(TimingSim::Mode::kSparse);
  Rng rng(0xABCD);
  const auto run_both = [&](std::size_t ops) {
    for (std::size_t i = 0; i < ops; ++i) {
      const std::uint64_t a = rng.next_bits(m.width);
      const std::uint64_t b = rng.next_bits(m.width);
      const StepResult d = dense.apply(a, b);
      const StepResult s = sparse.apply(a, b);
      ASSERT_EQ(d.switched_cap_ff, s.switched_cap_ff);
      ASSERT_EQ(d.settle_ps, s.settle_ps);
    }
    for (std::size_t n = 0; n < m.netlist.num_nets(); ++n) {
      const NetId net = static_cast<NetId>(n);
      ASSERT_EQ(dense.timing_sim().value(net), sparse.timing_sim().value(net));
    }
  };
  run_both(100);
  dense.set_fault_overlay(&overlay);  // install mid-run...
  sparse.set_fault_overlay(&overlay);
  run_both(100);
  dense.set_fault_overlay(nullptr);  // ...and release mid-run
  sparse.set_fault_overlay(nullptr);
  run_both(100);
}

TEST(SparseKernelTest, ModeCanBeSwitchedMidRun) {
  const MultiplierNetlist m = build_array_multiplier(16);
  MultiplierSim reference(m, test_tech());
  reference.set_mode(TimingSim::Mode::kDense);
  MultiplierSim switching(m, test_tech());

  Rng rng(0x5EED);
  for (std::size_t i = 0; i < 300; ++i) {
    switching.set_mode((i / 50) % 2 == 0 ? TimingSim::Mode::kSparse
                                         : TimingSim::Mode::kDense);
    const std::uint64_t a = rng.next_bits(m.width);
    const std::uint64_t b = rng.next_bits(m.width);
    const StepResult d = reference.apply(a, b);
    const StepResult s = switching.apply(a, b);
    ASSERT_EQ(d.output_settle_ps, s.output_settle_ps) << "step " << i;
    ASSERT_EQ(d.switched_cap_ff, s.switched_cap_ff) << "step " << i;
    ASSERT_EQ(reference.product(), switching.product()) << "step " << i;
  }
}

TEST(SparseKernelTest, RepeatedOperandsEvaluateAlmostNothing) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  MultiplierSim sim(m, test_tech());  // sparse by default
  sim.apply(0x1234, 0x5678);          // power-up: dense fallback
  sim.apply(0xABCD, 0x4321);
  const StepResult s = sim.apply(0xABCD, 0x4321);  // no input changed
  EXPECT_EQ(s.gates_evaluated, 0u);
  EXPECT_EQ(s.toggles, 0u);
  EXPECT_EQ(s.switched_cap_ff, 0.0);
  EXPECT_EQ(s.output_settle_ps, 0.0);
}

}  // namespace
}  // namespace agingsim
