// Cycle-accurate validation of the gate-level AHL control path (Fig. 12)
// against the behavioural model: the judging MUX, the gating D-flip-flop,
// and the "hold the input registers for exactly one extra cycle" protocol.

#include <gtest/gtest.h>

#include "src/core/ahl.hpp"
#include "src/core/ahl_netlist.hpp"
#include "src/netlist/techlib.hpp"
#include "src/sim/sequential.hpp"
#include "src/workload/patterns.hpp"

namespace agingsim {
namespace {

class AhlGateLevel : public ::testing::Test {
 protected:
  static constexpr int kWidth = 8;
  static constexpr int kSkip = 4;

  AhlGateLevel()
      : ctrl_(build_ahl_control_netlist(kWidth, kSkip)),
        sim_(ctrl_.netlist, default_tech_library(),
             {RegisterBinding{ctrl_.netlist.output_nets()[1],
                              ctrl_.q_gating_input, kInvalidNet,
                              Logic::kOne}}) {}

  // Runs one clock with the given operand + aging signal; returns
  // (one_cycle verdict, gating Q *entering* this cycle).
  std::pair<bool, bool> cycle(std::uint64_t operand, bool aging) {
    const bool gate_open = sim_.q(0) == Logic::kOne;
    for (int i = 0; i < kWidth; ++i) {
      sim_.set_input(i, logic_from_bool(((operand >> i) & 1) != 0));
    }
    sim_.set_input(ctrl_.aging_input, logic_from_bool(aging));
    sim_.clock();
    const bool one_cycle =
        sim_.value(ctrl_.netlist.output_nets()[0]) == Logic::kOne;
    return {one_cycle, gate_open};
  }

  AhlControlNetlist ctrl_;
  SequentialSim sim_;
};

TEST_F(AhlGateLevel, VerdictMatchesBehaviouralJudging) {
  AhlConfig cfg;
  cfg.width = kWidth;
  cfg.skip = kSkip;
  AdaptiveHoldLogic behavioural(cfg);
  Rng rng(0x6A7E);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t operand = rng.next_bits(kWidth);
    const auto [one_cycle, gate] = cycle(operand, /*aging=*/false);
    EXPECT_EQ(one_cycle, behavioural.decide_cycles(operand) == 1)
        << "operand " << operand;
  }
}

TEST_F(AhlGateLevel, AgingSignalSelectsSecondBlock) {
  // Boundary operand: exactly kSkip zeros => one cycle under the first
  // block, two cycles under the Skip-(k+1) block.
  Rng rng(0x6A7F);
  const std::uint64_t boundary =
      operand_with_zero_count(rng, kWidth, kSkip);
  EXPECT_TRUE(cycle(boundary, false).first);
  EXPECT_FALSE(cycle(boundary, true).first);
  // A sparser operand stays one-cycle under both blocks.
  const std::uint64_t sparse =
      operand_with_zero_count(rng, kWidth, kSkip + 2);
  EXPECT_TRUE(cycle(sparse, false).first);
  EXPECT_TRUE(cycle(sparse, true).first);
}

TEST_F(AhlGateLevel, TwoCycleVerdictClosesGateForExactlyOneCycle) {
  Rng rng(0x6A80);
  const std::uint64_t dense = operand_with_zero_count(rng, kWidth, 1);
  const std::uint64_t sparse =
      operand_with_zero_count(rng, kWidth, kWidth - 1);

  // Warm up with a one-cycle pattern: gate open.
  auto r = cycle(sparse, false);
  EXPECT_TRUE(r.first);
  r = cycle(sparse, false);
  EXPECT_TRUE(r.second) << "gate must be open in steady one-cycle flow";

  // Two-cycle pattern arrives: verdict 0, and on the *next* cycle the gate
  // is closed (the paper's !(gating) = 0 cycle, input registers hold).
  r = cycle(dense, false);
  EXPECT_FALSE(r.first);
  EXPECT_TRUE(r.second);  // this cycle still latched the new pattern
  r = cycle(dense, false);  // held operand re-evaluates
  EXPECT_FALSE(r.second) << "gate must be closed for the hold cycle";
  // The D flip-flop latched 1 during the hold cycle: gate reopens.
  r = cycle(sparse, false);
  EXPECT_TRUE(r.second) << "gate must reopen after exactly one hold cycle";
}

TEST_F(AhlGateLevel, SteadyTwoCycleStreamAlternatesGate) {
  // Every pattern needing two cycles => the gate alternates open/closed,
  // sustaining the paper's 2-cycles-per-operation throughput.
  Rng rng(0x6A81);
  const std::uint64_t dense = operand_with_zero_count(rng, kWidth, 0);
  cycle(dense, false);  // prime
  int open = 0, closed = 0;
  for (int i = 0; i < 10; ++i) {
    const auto [verdict, gate] = cycle(dense, false);
    EXPECT_FALSE(verdict);
    (gate ? open : closed) += 1;
  }
  EXPECT_EQ(open, 5);
  EXPECT_EQ(closed, 5);
}

TEST(AhlGateLevelConfig, OffsetValidationAndMetadata) {
  EXPECT_THROW(build_ahl_control_netlist(8, 4, -1), std::invalid_argument);
  const AhlControlNetlist c = build_ahl_control_netlist(8, 4, 2);
  EXPECT_EQ(c.width, 8);
  EXPECT_EQ(c.aging_input, 8);
  EXPECT_EQ(c.q_gating_input, 9);
  EXPECT_EQ(c.netlist.num_outputs(), 2u);
}

}  // namespace
}  // namespace agingsim
