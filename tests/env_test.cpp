// The strict env-parsing contract (src/core/env.hpp): whole-string parses
// only, warn-once-then-fallback on rejects, clamp-with-warning above the
// ceiling. bench::default_ops rides the same helper — the std::atol it
// replaced accepted "12abc" as 12 silently.

#include "src/core/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "bench/common.hpp"

namespace agingsim {
namespace {

/// Scoped setenv/unsetenv that restores the previous value.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_, old_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> old_;
};

TEST(EnvParseTest, LongParsesWholeStringsOnly) {
  EXPECT_EQ(env::parse_long("12"), 12);
  EXPECT_EQ(env::parse_long("-5"), -5);
  EXPECT_EQ(env::parse_long("0x10", 0), 16);
  EXPECT_FALSE(env::parse_long("").has_value());
  EXPECT_FALSE(env::parse_long("12abc").has_value());  // the old atol bug
  EXPECT_FALSE(env::parse_long("abc").has_value());
  EXPECT_FALSE(env::parse_long("12 ").has_value());
  EXPECT_FALSE(env::parse_long("99999999999999999999").has_value());
}

TEST(EnvParseTest, U64RejectsSignsAndGarbage) {
  EXPECT_EQ(env::parse_u64("18446744073709551615"), ~0ULL);
  EXPECT_EQ(env::parse_u64("0xFA17", 0), 0xFA17ULL);
  // strtoull silently negates "-1"; the wrapper must not.
  EXPECT_FALSE(env::parse_u64("-1").has_value());
  EXPECT_FALSE(env::parse_u64("+1").has_value());
  EXPECT_FALSE(env::parse_u64("7seeds").has_value());
  EXPECT_FALSE(env::parse_u64("").has_value());
}

TEST(EnvParseTest, DoubleRejectsGarbageAndNonFinite) {
  EXPECT_EQ(env::parse_double("0.5"), 0.5);
  EXPECT_EQ(env::parse_double("1e3"), 1000.0);
  EXPECT_FALSE(env::parse_double("0.5x").has_value());
  EXPECT_FALSE(env::parse_double("").has_value());
  EXPECT_FALSE(env::parse_double("1e400").has_value());  // overflow
  EXPECT_FALSE(env::parse_double("nan").has_value());
  EXPECT_FALSE(env::parse_double("inf").has_value());
}

TEST(EnvVarTest, RejectedValueWarnsOnceAndFallsBack) {
  ScopedEnv scoped("AGINGSIM_ENV_TEST_REJECT", "12abc");
  testing::internal::CaptureStderr();
  EXPECT_FALSE(env::long_var("AGINGSIM_ENV_TEST_REJECT", 1).has_value());
  EXPECT_EQ(env::long_or("AGINGSIM_ENV_TEST_REJECT", 77, 1), 77);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("AGINGSIM_ENV_TEST_REJECT='12abc'"), std::string::npos)
      << err;
  EXPECT_NE(err.find("ignored"), std::string::npos) << err;
  // Deduplicated per (name, value): the second read warned nothing.
  EXPECT_EQ(err.find("AGINGSIM_ENV_TEST_REJECT",
                     err.find("AGINGSIM_ENV_TEST_REJECT") + 1),
            std::string::npos)
      << err;
}

TEST(EnvVarTest, ValueAboveCeilingClampsWithWarning) {
  ScopedEnv scoped("AGINGSIM_ENV_TEST_CLAMP", "5000");
  testing::internal::CaptureStderr();
  EXPECT_EQ(env::long_var("AGINGSIM_ENV_TEST_CLAMP", 1, 256), 256);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("clamped"), std::string::npos) << err;
}

TEST(EnvVarTest, UnsetAndBelowMinimumBehave) {
  ScopedEnv scoped("AGINGSIM_ENV_TEST_UNSET", nullptr);
  EXPECT_FALSE(env::long_var("AGINGSIM_ENV_TEST_UNSET", 1).has_value());
  EXPECT_EQ(env::long_or("AGINGSIM_ENV_TEST_UNSET", 9, 1), 9);

  ScopedEnv below("AGINGSIM_ENV_TEST_BELOW", "0");
  EXPECT_EQ(env::long_or("AGINGSIM_ENV_TEST_BELOW", 9, 1), 9);
}

TEST(EnvVarTest, StrVarTreatsEmptyAsUnset) {
  ScopedEnv empty("AGINGSIM_ENV_TEST_STR", "");
  EXPECT_FALSE(env::str_var("AGINGSIM_ENV_TEST_STR").has_value());
  ScopedEnv set("AGINGSIM_ENV_TEST_STR", "/tmp/ckpt");
  EXPECT_EQ(env::str_var("AGINGSIM_ENV_TEST_STR"), "/tmp/ckpt");
}

TEST(EnvVarTest, ChoiceVarMatchesExactlyOrFallsBack) {
  static constexpr const char* kChoices[] = {"dense", "sparse", "batch"};
  {
    ScopedEnv scoped("AGINGSIM_ENV_TEST_CHOICE", "batch");
    EXPECT_EQ(env::choice_var("AGINGSIM_ENV_TEST_CHOICE", kChoices), 2u);
  }
  {
    // Wrong case is a reject, not a match: the caller's default must win
    // (with a once-only warning listing the accepted spellings).
    testing::internal::CaptureStderr();
    ScopedEnv scoped("AGINGSIM_ENV_TEST_CHOICE2", "Batch");
    EXPECT_FALSE(
        env::choice_var("AGINGSIM_ENV_TEST_CHOICE2", kChoices).has_value());
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("sparse"), std::string::npos) << err;
  }
  {
    ScopedEnv scoped("AGINGSIM_ENV_TEST_CHOICE3", "");
    EXPECT_FALSE(
        env::choice_var("AGINGSIM_ENV_TEST_CHOICE3", kChoices).has_value());
  }
}

TEST(EnvVarTest, DoubleOrParsesStrictlyAndEnforcesMinimum) {
  {
    ScopedEnv scoped("AGINGSIM_ENV_TEST_DBL", "2.5");
    EXPECT_DOUBLE_EQ(env::double_or("AGINGSIM_ENV_TEST_DBL", 0.0, 0.0), 2.5);
  }
  {
    ScopedEnv scoped("AGINGSIM_ENV_TEST_DBL2", "2.5ps");  // trailing garbage
    EXPECT_DOUBLE_EQ(env::double_or("AGINGSIM_ENV_TEST_DBL2", 7.0, 0.0), 7.0);
  }
  {
    ScopedEnv scoped("AGINGSIM_ENV_TEST_DBL3", "-1.0");  // below minimum
    EXPECT_DOUBLE_EQ(env::double_or("AGINGSIM_ENV_TEST_DBL3", 7.0, 0.0), 7.0);
  }
  {
    ScopedEnv scoped("AGINGSIM_ENV_TEST_DBL4", "inf");  // non-finite
    EXPECT_DOUBLE_EQ(env::double_or("AGINGSIM_ENV_TEST_DBL4", 7.0, 0.0), 7.0);
  }
  {
    ScopedEnv scoped("AGINGSIM_ENV_TEST_DBL5", nullptr);
    EXPECT_DOUBLE_EQ(env::double_or("AGINGSIM_ENV_TEST_DBL5", 7.0, 0.0), 7.0);
  }
}

TEST(EnvVarTest, BenchOpsUsesStrictParsing) {
  {
    ScopedEnv scoped("AGINGSIM_BENCH_OPS", "250");
    EXPECT_EQ(bench::default_ops(), 250u);
  }
  {
    // Under std::atol this returned 12; the strict parser falls back to
    // the 10000-op default (with a once-only warning).
    ScopedEnv scoped("AGINGSIM_BENCH_OPS", "12significant-figures");
    EXPECT_EQ(bench::default_ops(), 10000u);
  }
  {
    ScopedEnv scoped("AGINGSIM_BENCH_OPS", nullptr);
    EXPECT_EQ(bench::default_ops(), 10000u);
  }
}

}  // namespace
}  // namespace agingsim
