// Streaming campaign responses and resume cursors, end to end over a real
// socket (docs/SERVING.md): progress-frame ordering, stream_every thinning,
// tail-only resume with byte-identical frames, cursor validation, and the
// per-client fairness surface (client_id in status, quota rejections).

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/json.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"

namespace agingsim::serve {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_(fs::temp_directory_path() /
              (std::string("agingsim_stream_test_") + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

class Client {
 public:
  explicit Client(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                  socket_path.c_str());
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }
  bool send(const std::string& payload) { return write_frame_fd(fd_, payload); }
  std::optional<std::string> recv_raw() { return read_frame_fd(fd_); }

  std::optional<JsonValue> call(const std::string& payload) {
    if (!send(payload)) return std::nullopt;
    const auto frame = recv_raw();
    if (!frame.has_value()) return std::nullopt;
    return parse_json(*frame);
  }

  /// Sends one request and drains raw frames until the final one (no
  /// "stream" key). Returns all frames in arrival order, final included.
  std::optional<std::vector<std::string>> call_stream(
      const std::string& payload) {
    if (!send(payload)) return std::nullopt;
    std::vector<std::string> frames;
    while (true) {
      auto frame = recv_raw();
      if (!frame.has_value()) return std::nullopt;
      const bool final_frame = frame->find("\"stream\"") == std::string::npos;
      frames.push_back(std::move(*frame));
      if (final_frame) return frames;
    }
  }

 private:
  int fd_ = -1;
};

std::string error_code_of(const JsonValue& response) {
  const JsonValue* error = response.find("error");
  return error != nullptr ? error->str_or("code", "") : "";
}

ServerConfig stream_config(const TempDir& dir) {
  ServerConfig config;
  config.socket_path = (dir.path() / "agingd.sock").string();
  config.workers = 1;
  config.admission.capacity = 4;
  config.drain_grace_ms = 500;
  config.cache_budget_bytes = 8u << 20;
  config.service.checkpoint_root = (dir.path() / "ckpt").string();
  config.service.runner.max_retries = 0;
  return config;
}

/// The drill campaign: 3 trials -> 4 work units (baseline + trials).
std::string campaign_request(std::uint64_t id, const std::string& extra) {
  return "{\"id\": " + std::to_string(id) +
         ", \"method\": \"campaign\", \"params\": {\"arch\": \"cb\","
         " \"width\": 4, \"trials\": 3, \"ops\": 64, \"sites\": 1,"
         " \"seed\": 77" +
         (extra.empty() ? "" : ", " + extra) + "}}";
}

TEST(ServeStream, FramesAscendTheFrontierAndFinalCarriesCursor) {
  TempDir dir("frames");
  Server server(stream_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(server.config().socket_path);
  ASSERT_TRUE(client.connected());
  const auto frames = client.call_stream(campaign_request(1, "\"stream\": true"));
  ASSERT_TRUE(frames.has_value());
  // 4 progress frames (units 1..4) + the final response.
  ASSERT_EQ(frames->size(), 5u);
  for (std::size_t i = 0; i + 1 < frames->size(); ++i) {
    const auto doc = parse_json((*frames)[i]);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->u64_or("id", 0), 1u);
    EXPECT_EQ(doc->u64_or("stream", 0), i + 1);  // seq == units_done
    EXPECT_EQ(doc->u64_or("units_done", 0), i + 1);
    EXPECT_EQ(doc->u64_or("units_total", 0), 4u);
    const JsonValue* partial = doc->find("partial_stats");
    ASSERT_NE(partial, nullptr);
    // Frame 1 covers only the fault-free baseline unit, so its partial
    // stats show zero trials; from frame 2 on the trial ops accumulate.
    EXPECT_EQ(partial->u64_or("trials", 99), i);
    if (i == 0) {
      EXPECT_EQ(partial->u64_or("ops", 99), 0u);
    } else {
      EXPECT_GT(partial->u64_or("ops", 0), 0u);
    }
  }
  const auto final_doc = parse_json(frames->back());
  ASSERT_TRUE(final_doc.has_value());
  ASSERT_TRUE(final_doc->bool_or("ok", false)) << error_code_of(*final_doc);
  const JsonValue* result = final_doc->find("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* cursor = result->find("resume_cursor");
  ASSERT_NE(cursor, nullptr);
  EXPECT_EQ(cursor->str_or("digest", "").size(), 16u);
  EXPECT_EQ(cursor->i64_or("unit_index", -1), 4);  // trials + 1 = finished

  server.drain();
  server.wait();
}

TEST(ServeStream, StreamEveryThinsFramesButNeverTheLast) {
  TempDir dir("every");
  Server server(stream_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(server.config().socket_path);
  const auto frames = client.call_stream(
      campaign_request(1, "\"stream\": true, \"stream_every\": 3"));
  ASSERT_TRUE(frames.has_value());
  // Units 1..4 thinned to multiples of 3, plus the final unit always: 3, 4.
  ASSERT_EQ(frames->size(), 3u);
  EXPECT_EQ(parse_json((*frames)[0])->u64_or("units_done", 0), 3u);
  EXPECT_EQ(parse_json((*frames)[1])->u64_or("units_done", 0), 4u);

  server.drain();
  server.wait();
}

TEST(ServeStream, ResumeCursorStreamsOnlyTheTailByteIdentically) {
  TempDir dir("resume");
  Server server(stream_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Uninterrupted run: every frame, captured raw.
  Client first(server.config().socket_path);
  const auto full =
      first.call_stream(campaign_request(1, "\"stream\": true"));
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(full->size(), 5u);
  const auto final_doc = parse_json(full->back());
  const std::string digest =
      final_doc->find("result")->find("resume_cursor")->str_or("digest", "");
  ASSERT_EQ(digest.size(), 16u);

  // A client that saw frames 1..2 and then died re-attaches with cursor 2
  // (same request id — byte identity is part of the contract). Units are
  // restored from checkpoints, frames <= 2 suppressed, frames 3..4 and the
  // final response byte-equal the uninterrupted run's.
  Client resumed(server.config().socket_path);
  const auto tail = resumed.call_stream(campaign_request(
      1, "\"stream\": true, \"resume_cursor\": {\"digest\": \"" + digest +
             "\", \"unit_index\": 2}"));
  ASSERT_TRUE(tail.has_value());
  ASSERT_EQ(tail->size(), 3u);
  EXPECT_EQ((*tail)[0], (*full)[2]);
  EXPECT_EQ((*tail)[1], (*full)[3]);
  EXPECT_EQ((*tail)[2], (*full)[4]);  // the final response too

  // Concatenated transcripts are identical: pre-drop + resumed == full.
  std::string pre_drop = (*full)[0] + (*full)[1];
  std::string resumed_bytes;
  for (const std::string& f : *tail) resumed_bytes += f;
  std::string uninterrupted;
  for (const std::string& f : *full) uninterrupted += f;
  EXPECT_EQ(pre_drop + resumed_bytes, uninterrupted);

  // A finished cursor streams nothing: just the final response again.
  Client done(server.config().socket_path);
  const auto nothing = done.call_stream(campaign_request(
      1, "\"stream\": true, \"resume_cursor\": {\"digest\": \"" + digest +
             "\", \"unit_index\": 4}"));
  ASSERT_TRUE(nothing.has_value());
  ASSERT_EQ(nothing->size(), 1u);
  EXPECT_EQ(nothing->front(), full->back());

  server.drain();
  server.wait();
}

TEST(ServeStream, CursorValidationRejectsBadInput) {
  TempDir dir("badcursor");
  Server server(stream_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(server.config().socket_path);
  // A cursor whose digest does not match this campaign's configuration.
  const auto mismatch = client.call(campaign_request(
      1,
      "\"stream\": true, \"resume_cursor\": {\"digest\":"
      " \"0000000000000000\", \"unit_index\": 1}"));
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_EQ(error_code_of(*mismatch), "bad_request");

  const char* bad[] = {
      "\"resume_cursor\": 7",                              // not an object
      "\"resume_cursor\": {\"unit_index\": 1}",            // no digest
      "\"resume_cursor\": {\"digest\": \"ab\", \"unit_index\": 9}",  // > n+1
      "\"stream\": true, \"stream_every\": 0",             // < 1
  };
  for (const char* extra : bad) {
    const auto reply = client.call(campaign_request(2, extra));
    ASSERT_TRUE(reply.has_value()) << extra;
    EXPECT_EQ(error_code_of(*reply), "bad_request") << extra;
  }

  server.drain();
  server.wait();
}

TEST(ServeStream, UnstreamedCampaignStillReturnsACursor) {
  TempDir dir("nostream");
  Server server(stream_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(server.config().socket_path);
  const auto reply = client.call(campaign_request(1, ""));
  ASSERT_TRUE(reply.has_value());
  ASSERT_TRUE(reply->bool_or("ok", false)) << error_code_of(*reply);
  const JsonValue* cursor = reply->find("result")->find("resume_cursor");
  ASSERT_NE(cursor, nullptr);
  EXPECT_EQ(cursor->i64_or("unit_index", -1), 4);

  server.drain();
  server.wait();
}

// --- per-client fairness over the wire -------------------------------------

TEST(ServeStream, ClientIdentityShowsUpInStatus) {
  TempDir dir("clients");
  Server server(stream_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(server.config().socket_path);
  const auto work = client.call(
      R"({"id": 1, "method": "work", "client_id": "ci-paced",
          "params": {"spin_us": 100}})");
  ASSERT_TRUE(work.has_value());
  EXPECT_TRUE(work->bool_or("ok", false));

  // record_done runs on the worker after the reply is written, so give the
  // completion count a moment to land before asserting on it.
  bool found = false;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!found && std::chrono::steady_clock::now() < give_up) {
    const auto status = client.call(R"({"id": 2, "method": "status"})");
    ASSERT_TRUE(status.has_value());
    const JsonValue* result = status->find("result");
    ASSERT_NE(result, nullptr);
    const JsonValue* clients = result->find("clients");
    ASSERT_NE(clients, nullptr);
    ASSERT_TRUE(clients->is_array());
    for (const JsonValue& entry : clients->as_array()) {
      if (entry.str_or("id", "") != "ci-paced") continue;
      EXPECT_EQ(entry.u64_or("accepted", 0), 1u);
      EXPECT_EQ(entry.u64_or("rejected_quota", 99), 0u);
      if (entry.u64_or("completed", 0) == 1u) found = true;
    }
    if (!found) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(found)
      << "client 'ci-paced' with completed=1 missing from status clients";

  server.drain();
  server.wait();
}

TEST(ServeStream, QuotaRejectsFloodWithRetryHint) {
  TempDir dir("quota");
  ServerConfig config = stream_config(dir);
  config.admission.fairness.quota_rate_per_s = 0.001;  // no practical refill
  config.admission.fairness.quota_burst = 2.0;
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(config.socket_path);
  for (int i = 1; i <= 2; ++i) {
    const auto ok = client.call(
        "{\"id\": " + std::to_string(i) +
        ", \"method\": \"work\", \"client_id\": \"ci-greedy\","
        " \"params\": {\"spin_us\": 10}}");
    ASSERT_TRUE(ok.has_value());
    EXPECT_TRUE(ok->bool_or("ok", false)) << error_code_of(*ok);
  }
  const auto rejected = client.call(
      R"({"id": 3, "method": "work", "client_id": "ci-greedy",
          "params": {"spin_us": 10}})");
  ASSERT_TRUE(rejected.has_value());
  EXPECT_FALSE(rejected->bool_or("ok", true));
  EXPECT_EQ(error_code_of(*rejected), "quota_exceeded");
  EXPECT_GE(rejected->find("error")->i64_or("retry_after_ms", 0),
            config.admission.retry_after_min_ms);

  // A different identity on the same connection still has a full bucket.
  const auto other = client.call(
      R"({"id": 4, "method": "work", "client_id": "ci-other",
          "params": {"spin_us": 10}})");
  ASSERT_TRUE(other.has_value());
  EXPECT_TRUE(other->bool_or("ok", false));

  // Control plane is never quota-limited, even for the exhausted identity.
  const auto health = client.call(
      R"({"id": 5, "method": "health", "client_id": "ci-greedy"})");
  ASSERT_TRUE(health.has_value());
  EXPECT_TRUE(health->bool_or("ok", false));

  server.drain();
  server.wait();
}

}  // namespace
}  // namespace agingsim::serve
