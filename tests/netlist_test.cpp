#include "src/netlist/netlist.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace agingsim {
namespace {

TEST(NetlistTest, InputsHaveNoDriver) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_nets(), 2u);
  EXPECT_EQ(nl.driver_of(a), -1);
  EXPECT_EQ(nl.driver_of(b), -1);
  EXPECT_EQ(nl.input_name(0), "a");
  EXPECT_EQ(nl.input_name(1), "b");
}

TEST(NetlistTest, GateCreatesDrivenOutputNet) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_gate(CellKind::kAnd2, {a, b});
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.driver_of(y), 0);
  EXPECT_EQ(nl.gate(0).kind, CellKind::kAnd2);
  const auto ins = nl.gate_inputs(0);
  ASSERT_EQ(ins.size(), 2u);
  EXPECT_EQ(ins[0], a);
  EXPECT_EQ(ins[1], b);
}

TEST(NetlistTest, RejectsWrongPinCount) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(CellKind::kAnd2, {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(CellKind::kInv, {a, a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(CellKind::kMux2, {a, a}), std::invalid_argument);
}

TEST(NetlistTest, RejectsForwardReference) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(CellKind::kAnd2, {a, NetId{57}}),
               std::invalid_argument);
}

TEST(NetlistTest, MarkOutputValidatesNet) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.mark_output(a, "y");
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.output_name(0), "y");
  EXPECT_THROW(nl.mark_output(NetId{9}, "bad"), std::invalid_argument);
}

TEST(NetlistTest, TransistorCountSumsTraits) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_gate(CellKind::kNand2, {a, b});  // 4T
  nl.add_gate(CellKind::kInv, {y});                       // 2T
  EXPECT_EQ(nl.transistor_count(), 6);
  const auto counts = nl.gate_count_by_kind();
  EXPECT_EQ(counts[static_cast<std::size_t>(CellKind::kNand2)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(CellKind::kInv)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(CellKind::kAnd2)], 0u);
}

TEST(NetlistTest, FanoutListsEveryConsumerInGateOrder) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_gate(CellKind::kAnd2, {a, b});   // gate 0
  const NetId z = nl.add_gate(CellKind::kXor2, {a, y});   // gate 1
  nl.add_gate(CellKind::kNand2, {a, a});                  // gate 2: a twice
  const auto fa = nl.fanout(a);
  ASSERT_EQ(fa.size(), 4u);  // one entry per pin, duplicates included
  EXPECT_EQ(fa[0], 0);
  EXPECT_EQ(fa[1], 1);
  EXPECT_EQ(fa[2], 2);
  EXPECT_EQ(fa[3], 2);
  const auto fy = nl.fanout(y);
  ASSERT_EQ(fy.size(), 1u);
  EXPECT_EQ(fy[0], 1);
  EXPECT_TRUE(nl.fanout(z).empty());
  EXPECT_THROW(nl.fanout(NetId{99}), std::invalid_argument);
}

TEST(NetlistTest, LevelsAreLongestPathFromInputs) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_gate(CellKind::kAnd2, {a, b});  // level 0
  const NetId z = nl.add_gate(CellKind::kInv, {y});      // level 1
  nl.add_gate(CellKind::kXor2, {a, z});                  // level 2 (via z)
  EXPECT_EQ(nl.level(0), 0);
  EXPECT_EQ(nl.level(1), 1);
  EXPECT_EQ(nl.level(2), 2);
  EXPECT_EQ(nl.depth(), 3);
  EXPECT_THROW(nl.level(GateId{42}), std::invalid_argument);
}

TEST(NetlistTest, IndexRebuiltAfterStructuralChange) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_gate(CellKind::kAnd2, {a, b});
  EXPECT_EQ(nl.fanout(a).size(), 1u);  // builds the index
  EXPECT_EQ(nl.depth(), 1);
  nl.add_gate(CellKind::kXor2, {a, y});  // invalidates it
  const auto fa = nl.fanout(a);
  ASSERT_EQ(fa.size(), 2u);
  EXPECT_EQ(fa[1], 1);
  EXPECT_EQ(nl.level(1), 1);
  EXPECT_EQ(nl.depth(), 2);
}

TEST(NetlistTest, EmptyNetlistHasZeroDepth) {
  Netlist nl;
  EXPECT_EQ(nl.depth(), 0);
  nl.add_input("a");
  EXPECT_EQ(nl.depth(), 0);  // inputs alone add no logic levels
}

TEST(NetlistTest, ValidatePassesOnWellFormedNetlist) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_gate(CellKind::kXor2, {a, b});
  nl.mark_output(y, "y");
  EXPECT_NO_THROW(nl.validate());
}

}  // namespace
}  // namespace agingsim
