#include "bench/common.hpp"

#include <gtest/gtest.h>

namespace agingsim::bench {
namespace {

TEST(LinspaceTest, SinglePointDegeneratesToLowerBound) {
  const auto v = linspace(550.0, 1350.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 550.0);  // used to be 0/0 = NaN
}

TEST(LinspaceTest, NonPositiveCountsReturnEmpty) {
  EXPECT_TRUE(linspace(0.0, 1.0, 0).empty());
  EXPECT_TRUE(linspace(0.0, 1.0, -3).empty());
}

TEST(LinspaceTest, EndpointsAndSpacingAreExact) {
  const auto v = linspace(100.0, 500.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 100.0);
  EXPECT_DOUBLE_EQ(v[1], 200.0);
  EXPECT_DOUBLE_EQ(v[2], 300.0);
  EXPECT_DOUBLE_EQ(v[3], 400.0);
  EXPECT_DOUBLE_EQ(v[4], 500.0);
}

TEST(LinspaceTest, TwoPointsAreTheBounds) {
  const auto v = linspace(-1.0, 1.0, 2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
}

}  // namespace
}  // namespace agingsim::bench
