#include "src/workload/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace agingsim {
namespace {

TEST(HistogramTest, BinningAndTotals) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.9);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 2.0);
}

TEST(HistogramTest, OutOfRangeSamplesClampIntoEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(HistogramTest, MeanMinMaxTrackSamples) {
  Histogram h(0.0, 100.0, 10);
  h.add(10.0);
  h.add(30.0);
  h.add(20.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.min_sample(), 10.0);
  EXPECT_DOUBLE_EQ(h.max_sample(), 30.0);
}

TEST(HistogramTest, FractionBelow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);  // one per bin
  EXPECT_NEAR(h.fraction_below(5.0), 0.5, 1e-9);
  EXPECT_NEAR(h.fraction_below(10.0), 1.0, 1e-9);
  EXPECT_NEAR(h.fraction_below(0.0), 0.0, 1e-9);
}

TEST(HistogramTest, Percentile) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_NEAR(h.percentile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.percentile(1.0), 10.0, 1e-9);
}

TEST(HistogramTest, FractionBelowInterpolatesWithinABin) {
  // Regression: the straddling bin's fractional count was accumulated into
  // a uint64_t, truncating e.g. 1.5 samples to 1 — three samples in one
  // bin used to report fraction_below(mid) = 1/3 instead of 1/2.
  Histogram h(0.0, 1.0, 1);
  h.add(0.1);
  h.add(0.2);
  h.add(0.3);
  EXPECT_NEAR(h.fraction_below(0.5), 0.5, 1e-9);
  EXPECT_NEAR(h.fraction_below(0.25), 0.25, 1e-9);  // 0.75 samples, not 0
}

TEST(HistogramTest, PercentileSkipsEmptyLeadingBins) {
  // Regression: percentile(0.0) tripped `cum >= target` on bin 0 even when
  // it held no samples, reporting the first bin's upper edge (1.0 here)
  // instead of a value any sample actually reaches.
  Histogram h(0.0, 10.0, 10);
  h.add(5.5);
  h.add(5.6);
  h.add(7.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 6.0);  // first NON-EMPTY bin's edge
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 6.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 8.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string s = h.render(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace agingsim
