// Failure-injection tests for the checkpoint write path
// (src/runtime/checkpoint.cpp). The write hook stands in for write(2) so
// the tests can exercise the exact syscall contracts — short writes, EINTR
// storms, ENOSPC — that a loaded filesystem produces and a quiet CI
// machine never does.

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <string>

#include "src/runtime/checkpoint.hpp"
#include "src/runtime/run_error.hpp"

namespace agingsim::runtime {
namespace {

namespace fs = std::filesystem;

// The hook is a plain function pointer, so behavior is steered through
// file-scope state reset in SetUp.
std::atomic<long> g_bytes_until_failure{-1};  // -1: never fail
std::atomic<int> g_failure_errno{ENOSPC};
std::atomic<int> g_eintr_budget{0};  // EINTR returns before each real write
std::atomic<bool> g_single_byte{false};

long faulty_write(int fd, const void* buf, std::size_t count) {
  if (g_eintr_budget.load() > 0) {
    g_eintr_budget.fetch_sub(1);
    errno = EINTR;
    return -1;
  }
  const long remaining = g_bytes_until_failure.load();
  if (remaining == 0) {
    errno = g_failure_errno.load();
    return -1;
  }
  std::size_t n = count;
  if (g_single_byte.load()) n = 1;
  if (remaining > 0 && static_cast<long>(n) > remaining) {
    n = static_cast<std::size_t>(remaining);
  }
  const ssize_t written = ::write(fd, buf, n);
  if (written > 0 && remaining > 0) {
    g_bytes_until_failure.fetch_sub(written);
  }
  return written;
}

class CheckpointFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("agingsim_ckpt_fault_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    g_bytes_until_failure = -1;
    g_failure_errno = ENOSPC;
    g_eintr_budget = 0;
    g_single_byte = false;
    set_checkpoint_write_hook_for_testing(&faulty_write);
  }

  void TearDown() override {
    set_checkpoint_write_hook_for_testing(nullptr);
    fs::remove_all(dir_);
  }

  std::size_t files_with_extension(const char* ext) const {
    std::size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ext) ++n;
    }
    return n;
  }

  fs::path dir_;
};

TEST_F(CheckpointFaultTest, EnospcIsPermanentWithActionableMessage) {
  CheckpointStore store(dir_, /*config_digest=*/0xABCDu);
  g_bytes_until_failure = 0;  // first write fails: disk full from byte one
  try {
    store.persist(3, "payload");
    FAIL() << "persist on a full disk must throw";
  } catch (const RunError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kPermanent)
        << "retrying a full disk burns the retry budget for nothing";
    const std::string what = e.what();
    EXPECT_NE(what.find("disk full (ENOSPC"), std::string::npos) << what;
    EXPECT_NE(what.find("--resume"), std::string::npos) << what;
  }
  // No torn file of either kind is left behind.
  EXPECT_EQ(files_with_extension(".tmp"), 0u);
  EXPECT_EQ(files_with_extension(".ckpt"), 0u);
  EXPECT_FALSE(store.has(3));
}

TEST_F(CheckpointFaultTest, PartialWriteThenEnospcLeavesNoTornCheckpoint) {
  CheckpointStore store(dir_, 0xABCDu);
  ASSERT_NO_THROW(store.persist(1, "unit-one-payload"));  // complete unit
  g_bytes_until_failure = 10;  // next write dies mid-payload
  EXPECT_THROW(store.persist(2, "unit-two-payload"), RunError);
  EXPECT_EQ(files_with_extension(".tmp"), 0u);
  EXPECT_EQ(files_with_extension(".ckpt"), 1u);  // only the complete unit

  // A fresh store (the restarted process) sees exactly the complete unit.
  g_bytes_until_failure = -1;
  CheckpointStore resumed(dir_, 0xABCDu);
  const CheckpointScan scan = resumed.load();
  EXPECT_EQ(scan.loaded, 1u);
  EXPECT_EQ(scan.discarded, 0u);
  EXPECT_EQ(resumed.restore(1).value(), "unit-one-payload");
  EXPECT_FALSE(resumed.has(2));
  // And the unit that failed can now be written.
  ASSERT_NO_THROW(resumed.persist(2, "unit-two-payload"));
  EXPECT_EQ(resumed.restore(2).value(), "unit-two-payload");
}

TEST_F(CheckpointFaultTest, ShortWritesAreContinuedToCompletion) {
  CheckpointStore store(dir_, 0x1234u);
  g_single_byte = true;  // every write(2) returns a 1-byte partial count
  const std::string payload(257, 'z');
  ASSERT_NO_THROW(store.persist(7, payload));

  CheckpointStore reread(dir_, 0x1234u);
  EXPECT_EQ(reread.load().loaded, 1u);
  EXPECT_EQ(reread.restore(7).value(), payload);
}

TEST_F(CheckpointFaultTest, EintrStormIsRetriedNotFatal) {
  CheckpointStore store(dir_, 0x1234u);
  g_eintr_budget = 64;  // a burst of interrupted syscalls before progress
  ASSERT_NO_THROW(store.persist(5, "signal-riddled"));
  CheckpointStore reread(dir_, 0x1234u);
  EXPECT_EQ(reread.load().loaded, 1u);
  EXPECT_EQ(reread.restore(5).value(), "signal-riddled");
}

TEST_F(CheckpointFaultTest, NonEnospcErrorsNameTheFailingStep) {
  CheckpointStore store(dir_, 0x1234u);
  g_bytes_until_failure = 0;
  g_failure_errno = EIO;
  try {
    store.persist(1, "x");
    FAIL() << "EIO must throw";
  } catch (const RunError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kPermanent);
    const std::string what = e.what();
    EXPECT_NE(what.find("write failed:"), std::string::npos) << what;
    EXPECT_EQ(what.find("disk full"), std::string::npos) << what;
  }
  EXPECT_EQ(files_with_extension(".tmp"), 0u);
}

}  // namespace
}  // namespace agingsim::runtime
