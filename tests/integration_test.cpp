// End-to-end integration tests: miniature versions of the paper's
// experiments wired through the full stack (netlist generation -> aging
// extraction -> trace simulation -> architectural policy -> metrics), at
// 8x8 scale so the whole file runs in seconds.

#include <gtest/gtest.h>

#include "src/aging/scenario.hpp"
#include "src/core/area.hpp"
#include "src/core/calibration.hpp"
#include "src/core/vl_multiplier.hpp"
#include "src/workload/histogram.hpp"
#include "src/workload/patterns.hpp"

namespace agingsim {
namespace {

TEST(IntegrationTest, DelayDistributionIsLeftSkewedVsCriticalPath) {
  // Fig. 5 premise: the overwhelming majority of random patterns settle in
  // far less than the critical path.
  const MultiplierNetlist m = build_column_bypass_multiplier(8);
  const TechLibrary& tech = default_tech_library();
  const double crit = critical_path_ps(m, tech);
  Rng rng(1);
  const auto trace =
      compute_op_trace(m, tech, uniform_patterns(rng, 8, 2000));
  Histogram h(0.0, crit, 20);
  for (const auto& op : trace) h.add(op.delay_ps);
  EXPECT_GT(h.fraction_below(0.75 * crit), 0.9);
}

TEST(IntegrationTest, SevenYearStoryFixedDegradesVlHolds) {
  // Fig. 26 in miniature: over 7 years the fixed design's latency (its aged
  // critical path) degrades by double-digit percent, while a generously
  // clocked variable-latency design degrades only via its (unchanged)
  // period — i.e. not at all in latency, only in error margin.
  const MultiplierNetlist m = build_column_bypass_multiplier(8);
  const TechLibrary& tech = default_tech_library();
  AgingScenario scenario(m.netlist, tech, BtiModel::calibrated(tech), 3, 400);

  const double crit0 = critical_path_ps(m, tech);
  const auto scales7 = scenario.delay_scales_at(7.0);
  const double crit7 = critical_path_ps(m, tech, scales7);
  EXPECT_GT(crit7 / crit0, 1.08);

  Rng rng(2);
  const auto pats = uniform_patterns(rng, 8, 2000);
  const auto trace0 = compute_op_trace(m, tech, pats);
  const auto trace7 = compute_op_trace(m, tech, pats, scales7);

  VlSystemConfig cfg;
  cfg.period_ps = 0.75 * crit7;  // generous: no violations even aged
  cfg.ahl.width = 8;
  cfg.ahl.skip = 3;
  VariableLatencySystem vl(m, tech, cfg);
  const RunStats y0 = vl.run(trace0);
  const RunStats y7 = vl.run(trace7, scenario.mean_dvth_at(7.0));
  // Some aged one-cycle patterns may now violate, but the AHL adapts and
  // the latency penalty stays small compared to the fixed design's 8+%.
  EXPECT_LT(y7.avg_latency_ps / y0.avg_latency_ps, 1.05);
  EXPECT_EQ(y0.undetected, 0u);
  EXPECT_EQ(y7.undetected, 0u);
}

TEST(IntegrationTest, AgedPowerIsLowerThanFreshPower) {
  // Figs. 26(b)/27(b): power decreases progressively as Vth rises.
  const MultiplierNetlist m = build_column_bypass_multiplier(8);
  const TechLibrary& tech = default_tech_library();
  AgingScenario scenario(m.netlist, tech, BtiModel::calibrated(tech), 5, 400);
  Rng rng(4);
  const auto pats = uniform_patterns(rng, 8, 1500);
  FixedLatencySystem fixed(m, tech);
  const auto trace0 = compute_op_trace(m, tech, pats);
  const double crit0 = critical_path_ps(m, tech);
  const RunStats y0 = fixed.run(trace0, crit0, 0.0);
  const auto scales = scenario.delay_scales_at(7.0);
  const auto trace7 = compute_op_trace(m, tech, pats, scales);
  const RunStats y7 = fixed.run(trace7, critical_path_ps(m, tech, scales),
                                scenario.mean_dvth_at(7.0));
  EXPECT_LT(y7.avg_power_mw, y0.avg_power_mw);
}

TEST(IntegrationTest, AmHasHighestPower) {
  // Section IV-E / Fig. 26(b): "the AM has the largest average power".
  // Power is energy over each design's own cycle period: bypassing both
  // trims switching energy and (being slower) spreads it over a longer
  // cycle.
  const TechLibrary& tech = default_tech_library();
  Rng rng(6);
  const auto pats = uniform_patterns(rng, 16, 1000);
  double power[3];
  int idx = 0;
  for (auto arch : {MultiplierArch::kArray, MultiplierArch::kColumnBypass,
                    MultiplierArch::kRowBypass}) {
    const MultiplierNetlist m = build_multiplier(arch, 16);
    const auto trace = compute_op_trace(m, tech, pats);
    FixedLatencySystem fixed(m, tech);
    power[idx++] =
        fixed.run(trace, critical_path_ps(m, tech)).avg_power_mw;
  }
  EXPECT_GT(power[0], power[1]);  // AM > FLCB
  EXPECT_GT(power[0], power[2]);  // AM > FLRB
}

TEST(IntegrationTest, OneCycleRatiosMatchBinomialTails) {
  // Tables I/II at 8-bit scale: measured one-cycle ratios track the
  // analytic binomial tails for both judging conventions.
  const TechLibrary& tech = default_tech_library();
  Rng rng(8);
  const auto pats = uniform_patterns(rng, 8, 4000);
  for (auto arch :
       {MultiplierArch::kColumnBypass, MultiplierArch::kRowBypass}) {
    const MultiplierNetlist m = build_multiplier(arch, 8);
    const auto trace = compute_op_trace(m, tech, pats);
    const double crit = critical_path_ps(m, tech);
    for (int skip : {3, 4, 5}) {
      VlSystemConfig cfg;
      cfg.period_ps = crit + 1.0;
      cfg.ahl.width = 8;
      cfg.ahl.skip = skip;
      VariableLatencySystem sys(m, tech, cfg);
      const RunStats s = sys.run(trace);
      EXPECT_NEAR(s.one_cycle_ratio, expected_one_cycle_ratio(8, skip), 0.03)
          << arch_name(arch) << " skip " << skip;
    }
  }
}

TEST(IntegrationTest, PreferredPeriodRangeExists) {
  // Fig. 13 premise: there is a period band where the VL bypassing design
  // beats the *array* multiplier's latency; far below it, re-execution
  // penalties dominate; far above, timing waste dominates.
  const TechLibrary tech = calibrated_tech_library();
  const MultiplierNetlist cb = build_column_bypass_multiplier(8);
  const MultiplierNetlist am = build_array_multiplier(8);
  const double am_crit = critical_path_ps(am, tech);
  const double cb_crit = critical_path_ps(cb, tech);
  Rng rng(10);
  const auto trace =
      compute_op_trace(cb, tech, uniform_patterns(rng, 8, 3000));

  double best = 1e18;
  for (double period = 0.5 * cb_crit; period <= cb_crit;
       period += 0.05 * cb_crit) {
    VlSystemConfig cfg;
    cfg.period_ps = period;
    cfg.ahl.width = 8;
    cfg.ahl.skip = 3;
    VariableLatencySystem sys(cb, tech, cfg);
    best = std::min(best, sys.run(trace).avg_latency_ps);
  }
  EXPECT_LT(best, am_crit);   // beats the AM somewhere in the band
  EXPECT_LT(best, cb_crit);   // and trivially the fixed CB
}

TEST(IntegrationTest, AreaOrderingMatchesFig25) {
  const auto am = build_array_multiplier(16);
  const auto cb = build_column_bypass_multiplier(16);
  const auto rb = build_row_bypass_multiplier(16);
  const auto am_area = fixed_latency_area(am).total();
  const auto flcb = fixed_latency_area(cb).total();
  const auto avlcb = variable_latency_area(cb).total();
  const auto flrb = fixed_latency_area(rb).total();
  const auto avlrb = variable_latency_area(rb).total();
  EXPECT_LT(am_area, flcb);
  EXPECT_LT(flcb, avlcb);
  EXPECT_LT(flrb, avlrb);
  EXPECT_LT(avlcb, avlrb);
}

}  // namespace
}  // namespace agingsim
