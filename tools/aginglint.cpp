// aginglint — rule-based netlist lint & static timing-safety analyzer.
//
// Lints generated multiplier netlists with the src/lint/ engine: structural
// rules (driver table, pin arity, dead logic, bypass-pin exclusivity),
// timing-safety rules (Razor coverage, AHL hold-count sufficiency and —
// with --hold — min-corner shadow-window hold analysis over the aged sweep,
// via the min/max multi-corner STA + the BTI aging model) and the functional
// consistency rule (netlist vs golden multiply on seeded vectors).
//
// --repair additionally runs the automatic hold-repair pass (delay-buffer
// insertion on violating short paths), re-extracts the aging scenario on
// the repaired netlist, re-lints it, and reports the inserted buffers plus
// per-output margins before/after in the JSON.
//
// Exit codes: 0 = no error-severity diagnostics (post-repair when --repair
// is given, which also requires the repair itself to be clean), 1 = at
// least one error or a failed repair, 2 = usage error. See docs/LINT.md for
// the rule catalog and JSON schema.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/aging/prob_propagation.hpp"
#include "src/aging/scenario.hpp"
#include "src/core/calibration.hpp"
#include "src/lint/engine.hpp"
#include "src/lint/repair.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/report/json.hpp"
#include "src/sim/sta.hpp"

namespace {

using namespace agingsim;

struct Options {
  std::vector<MultiplierArch> archs{
      MultiplierArch::kArray, MultiplierArch::kColumnBypass,
      MultiplierArch::kRowBypass, MultiplierArch::kWallaceTree};
  std::vector<int> widths{16, 32};
  double period_ps = 0.0;  // 0 = auto: aged critical path / hold cycles
  std::vector<double> years{0, 1, 2, 3, 4, 5, 6, 7};
  int hold_cycles = 2;
  std::size_t vectors = 256;
  std::uint64_t seed = 0x11A7C0DEULL;
  std::vector<std::size_t> unprotected_outputs;
  std::string json_path;  // empty = no JSON; "-" = stdout
  bool verbose = false;
  bool quiet = false;
  bool hold = false;    // enable timing.hold-window
  bool repair = false;  // run the hold-repair pass (implies hold)
  double hold_margin_ps = 0.0;
  double shadow_window_cycles = -1.0;  // < 0 = RazorConfig default
};

void print_usage(std::ostream& os) {
  os << "usage: aginglint [options]\n"
        "  --arch LIST      comma list of am,cb,rb,wt (default: all four)\n"
        "  --width LIST     comma list of bit widths in [2,32] (default: "
        "16,32)\n"
        "  --period PS      clock period to lint at; 0 = auto, the minimum\n"
        "                   safe period aged_critical_path/hold_cycles + 1 ps\n"
        "                   (default: 0)\n"
        "  --years LIST     aging sweep years (default: 0..7)\n"
        "  --hold-cycles N  AHL hold-cycle budget (default: 2)\n"
        "  --vectors N      consistency-rule random vectors (default: 256)\n"
        "  --seed S         consistency-rule PRNG seed\n"
        "  --unprotect I    sever the Razor tap on output index I\n"
        "                   (repeatable; demonstrates the coverage rule)\n"
        "  --hold           enable timing.hold-window: prove every Razor-\n"
        "                   protected output's min-corner arrival clears the\n"
        "                   shadow sampling window at every aging corner\n"
        "  --hold-margin PS extra hold guard band beyond the window "
        "(default: 0)\n"
        "  --shadow-window C  shadow sampling window in cycles (default: "
        "1.0)\n"
        "  --repair         run the automatic hold-repair pass (implies\n"
        "                   --hold): insert delay buffers on violating short\n"
        "                   paths, prove logic equivalence, re-lint the\n"
        "                   repaired netlist\n"
        "  --json PATH      write the diagnostics report as JSON ('-' = "
        "stdout)\n"
        "  --list-rules     print the rule catalog and exit\n"
        "  --verbose        print info-severity diagnostics too\n"
        "  --quiet          print only the per-target summary lines\n"
        "  --help           this text\n";
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) parts.push_back(item);
  }
  return parts;
}

std::optional<MultiplierArch> parse_arch(const std::string& name) {
  if (name == "am" || name == "array") return MultiplierArch::kArray;
  if (name == "cb" || name == "column") return MultiplierArch::kColumnBypass;
  if (name == "rb" || name == "row") return MultiplierArch::kRowBypass;
  if (name == "wt" || name == "wallace") return MultiplierArch::kWallaceTree;
  return std::nullopt;
}

int list_rules() {
  const lint::LintEngine engine;
  std::printf("%-32s %-12s %s\n", "rule", "category", "description");
  for (const auto& rule : engine.registry().rules()) {
    std::printf("%-32s %-12s %s\n", std::string(rule->id()).c_str(),
                std::string(lint::category_name(rule->category())).c_str(),
                std::string(rule->description()).c_str());
  }
  return 0;
}

std::optional<Options> parse_args(int argc, char** argv, int& exit_code) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << "aginglint: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      exit_code = 0;
      return std::nullopt;
    }
    if (arg == "--list-rules") {
      exit_code = list_rules();
      return std::nullopt;
    }
    if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--hold") {
      opt.hold = true;
    } else if (arg == "--repair") {
      opt.repair = true;
      opt.hold = true;
    } else if (arg == "--hold-margin") {
      const auto v = need_value("--hold-margin");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.hold_margin_ps = std::atof(v->c_str());
      if (opt.hold_margin_ps < 0.0) {
        std::cerr << "aginglint: --hold-margin must be >= 0\n";
        exit_code = 2;
        return std::nullopt;
      }
    } else if (arg == "--shadow-window") {
      const auto v = need_value("--shadow-window");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.shadow_window_cycles = std::atof(v->c_str());
      if (opt.shadow_window_cycles <= 0.0) {
        std::cerr << "aginglint: --shadow-window must be > 0\n";
        exit_code = 2;
        return std::nullopt;
      }
    } else if (arg == "--arch") {
      const auto v = need_value("--arch");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.archs.clear();
      for (const std::string& name : split_commas(*v)) {
        const auto arch = parse_arch(name);
        if (!arch) {
          std::cerr << "aginglint: unknown arch '" << name << "'\n";
          exit_code = 2;
          return std::nullopt;
        }
        opt.archs.push_back(*arch);
      }
    } else if (arg == "--width") {
      const auto v = need_value("--width");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.widths.clear();
      for (const std::string& w : split_commas(*v)) {
        const int width = std::atoi(w.c_str());
        if (width < 2 || width > 32) {
          std::cerr << "aginglint: width must be in [2,32], got '" << w
                    << "'\n";
          exit_code = 2;
          return std::nullopt;
        }
        opt.widths.push_back(width);
      }
    } else if (arg == "--period") {
      const auto v = need_value("--period");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.period_ps = std::atof(v->c_str());
    } else if (arg == "--years") {
      const auto v = need_value("--years");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.years.clear();
      for (const std::string& y : split_commas(*v)) {
        opt.years.push_back(std::atof(y.c_str()));
      }
    } else if (arg == "--hold-cycles") {
      const auto v = need_value("--hold-cycles");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.hold_cycles = std::atoi(v->c_str());
      if (opt.hold_cycles < 1) {
        std::cerr << "aginglint: --hold-cycles must be >= 1\n";
        exit_code = 2;
        return std::nullopt;
      }
    } else if (arg == "--vectors") {
      const auto v = need_value("--vectors");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.vectors = static_cast<std::size_t>(std::atoll(v->c_str()));
    } else if (arg == "--seed") {
      const auto v = need_value("--seed");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.seed = static_cast<std::uint64_t>(std::strtoull(v->c_str(), nullptr, 0));
    } else if (arg == "--unprotect") {
      const auto v = need_value("--unprotect");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.unprotected_outputs.push_back(
          static_cast<std::size_t>(std::atoll(v->c_str())));
    } else if (arg == "--json") {
      const auto v = need_value("--json");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.json_path = *v;
    } else {
      std::cerr << "aginglint: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      exit_code = 2;
      return std::nullopt;
    }
  }
  return opt;
}

struct TargetResult {
  std::string name;
  MultiplierArch arch;
  int width;
  double period_ps;
  std::size_t gates;
  std::size_t nets;
  lint::LintReport report;
  bool repaired = false;
  std::size_t errors_before_repair = 0;
  lint::HoldRepairResult repair;
};

TargetResult lint_target(const Options& opt, const TechLibrary& tech,
                         MultiplierArch arch, int width) {
  TargetResult result;
  result.arch = arch;
  result.width = width;
  result.name = std::string(arch_name(arch)) + std::to_string(width);

  MultiplierNetlist mult = build_multiplier(arch, width);
  result.gates = mult.netlist.num_gates();
  result.nets = mult.netlist.num_nets();

  // One aging scenario per target, from the zero-cost analytic stress
  // profile (deterministic, no Monte-Carlo extraction on the CLI path).
  const BtiModel bti = BtiModel::calibrated(tech);
  const AgingScenario aging(mult.netlist, tech, bti,
                            analytic_stress(mult.netlist));

  lint::TimingContext timing;
  timing.tech = &tech;
  timing.aging = &aging;
  timing.sweep_years = opt.years;
  timing.max_hold_cycles = opt.hold_cycles;
  timing.check_hold = opt.hold;
  timing.hold_margin_ps = opt.hold_margin_ps;
  if (opt.shadow_window_cycles > 0.0) {
    timing.razor.shadow_window_cycles = opt.shadow_window_cycles;
  }
  if (opt.period_ps > 0.0) {
    timing.period_ps = opt.period_ps;
  } else {
    // Auto period: the minimum the variable-latency design rule allows —
    // the worst aged critical path must fit `hold_cycles` cycles — plus
    // 1 ps so float rounding cannot sit exactly on the boundary.
    const double worst_year =
        opt.years.empty() ? 0.0
                          : *std::max_element(opt.years.begin(), opt.years.end());
    const StaResult aged_sta =
        run_sta(mult.netlist, tech, aging.delay_scales_at(worst_year));
    timing.period_ps =
        aged_sta.critical_path_ps / opt.hold_cycles + 1.0;
  }
  if (!opt.unprotected_outputs.empty()) {
    timing.razor_protected.assign(mult.netlist.num_outputs(), 1);
    for (std::size_t idx : opt.unprotected_outputs) {
      if (idx < timing.razor_protected.size()) timing.razor_protected[idx] = 0;
    }
  }

  const auto run_lint = [&](const AgingScenario& scenario) {
    lint::TimingContext t = timing;
    t.aging = &scenario;
    lint::LintContext ctx;
    ctx.netlist = &mult.netlist;
    ctx.multiplier = &mult;
    ctx.timing = &t;
    ctx.consistency.vectors = opt.vectors;
    ctx.consistency.seed = opt.seed;
    const lint::LintEngine engine;
    return engine.run(ctx);
  };

  result.report = run_lint(aging);
  result.period_ps = timing.period_ps;

  if (opt.repair) {
    result.repaired = true;
    result.errors_before_repair = result.report.errors();
    lint::HoldRepairConfig cfg;
    cfg.equiv_vectors = opt.vectors;
    cfg.equiv_seed = opt.seed;
    result.repair = lint::repair_hold(mult.netlist, tech, timing, cfg);
    result.gates = mult.netlist.num_gates();
    result.nets = mult.netlist.num_nets();
    // The original scenario's overlays are sized for the pre-repair gate
    // count; re-extract aging on the repaired netlist (inserted buffers get
    // real stress-derived scales) and re-lint. This final report — full
    // structural + timing + consistency rule set on the repaired design —
    // is what drives the exit code.
    const AgingScenario repaired_aging(mult.netlist, tech, bti,
                                       analytic_stress(mult.netlist));
    result.report = run_lint(repaired_aging);
  }
  return result;
}

void print_target(const Options& opt, const TargetResult& t) {
  std::printf("%-6s %6zu gates, %6zu nets, T_clk %8.1f ps: %s\n",
              t.name.c_str(), t.gates, t.nets, t.period_ps,
              t.report.summary().c_str());
  if (t.repaired) {
    std::printf(
        "  repair: %d buffer(s) in %d pass(es), %zu error(s) before, "
        "hold %s, setup %s, equivalence %s\n",
        t.repair.buffers_inserted, t.repair.passes, t.errors_before_repair,
        t.repair.hold_clean ? "clean" : "VIOLATED",
        t.repair.max_clean ? "clean" : "VIOLATED",
        !t.repair.equivalence.checked ? "unchecked"
        : t.repair.equivalence.ok()  ? "proved"
                                     : "FAILED");
  }
  if (opt.quiet) return;
  for (const lint::Diagnostic& d : t.report.diagnostics) {
    if (d.severity == lint::Severity::kInfo && !opt.verbose) continue;
    std::printf("  %-7s [%s] %s\n",
                std::string(lint::severity_name(d.severity)).c_str(),
                d.rule.c_str(), d.message.c_str());
  }
}

std::string targets_json(const Options& opt,
                         const std::vector<TargetResult>& targets) {
  JsonWriter w;
  w.begin_object();
  w.key("tool").value("aginglint");
  w.key("schema_version").value(std::int64_t{1});
  w.key("hold_cycles").value(opt.hold_cycles);
  w.key("targets").begin_array();
  for (const TargetResult& t : targets) {
    w.begin_object();
    w.key("name").value(t.name);
    w.key("arch").value(arch_name(t.arch));
    w.key("width").value(t.width);
    w.key("period_ps").value(t.period_ps);
    w.key("gates").value(static_cast<std::uint64_t>(t.gates));
    w.key("nets").value(static_cast<std::uint64_t>(t.nets));
    if (t.repaired) {
      const lint::HoldRepairResult& r = t.repair;
      w.key("repair").begin_object();
      w.key("window_ps").value(r.window_ps);
      w.key("required_min_ps").value(r.required_min_ps);
      w.key("passes").value(r.passes);
      w.key("buffers_inserted").value(r.buffers_inserted);
      w.key("errors_before").value(
          static_cast<std::uint64_t>(t.errors_before_repair));
      w.key("hold_clean").value(r.hold_clean);
      w.key("max_clean").value(r.max_clean);
      w.key("clean").value(r.clean());
      w.key("equivalence").begin_object();
      w.key("checked").value(r.equivalence.checked);
      w.key("vectors").value(static_cast<std::uint64_t>(r.equivalence.vectors));
      w.key("mismatches").value(
          static_cast<std::uint64_t>(r.equivalence.mismatches));
      w.key("ok").value(r.equivalence.ok());
      w.end_object();
      w.key("outputs").begin_array();
      for (const lint::OutputHoldReport& o : r.outputs) {
        w.begin_object();
        w.key("name").value(o.name);
        w.key("razor_protected").value(o.razor_protected);
        w.key("buffers").value(o.buffers_inserted);
        w.key("min_before_ps").value(o.min_before_ps);
        w.key("max_before_ps").value(o.max_before_ps);
        w.key("min_after_ps").value(o.min_after_ps);
        w.key("max_after_ps").value(o.max_after_ps);
        w.key("hold_ok_after").value(o.hold_ok_after);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.key("report");
    t.report.write_json(w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  int exit_code = 0;
  const auto opt = parse_args(argc, argv, exit_code);
  if (!opt) return exit_code;

  const TechLibrary tech = calibrated_tech_library();
  std::vector<TargetResult> targets;
  std::size_t total_errors = 0;
  for (const int width : opt->widths) {
    for (const MultiplierArch arch : opt->archs) {
      targets.push_back(lint_target(*opt, tech, arch, width));
      print_target(*opt, targets.back());
      total_errors += targets.back().report.errors();
      // A repair that left hold/setup dirty or failed its equivalence proof
      // is a failure even when the post-repair report alone looks clean.
      if (targets.back().repaired && !targets.back().repair.clean()) {
        ++total_errors;
      }
    }
  }

  if (!opt->json_path.empty()) {
    const std::string json = targets_json(*opt, targets);
    if (opt->json_path == "-") {
      std::cout << json << "\n";
    } else {
      std::ofstream out(opt->json_path);
      if (!out) {
        std::cerr << "aginglint: cannot write " << opt->json_path << "\n";
        return 2;
      }
      out << json << "\n";
    }
  }

  if (total_errors != 0) {
    std::fprintf(stderr, "aginglint: %zu error-severity diagnostic(s)\n",
                 total_errors);
    return 1;
  }
  return 0;
}
