// agingload — load generator and SLO harness for agingd (docs/SERVING.md).
//
// Two drive modes:
//   closed  N connections, each firing the next request the moment the
//           previous response lands — measures the daemon's sustainable
//           throughput (the achieved_rps in the report);
//   open    requests launched on a fixed wall-clock schedule at --rate
//           req/s split across the connections, regardless of response
//           latency — offered load stays fixed even as the daemon slows,
//           which is what pushes it into admission-control territory.
//
// The overload drill in CI runs closed-loop first to find the sustainable
// rate, then open-loop at 2x that rate and asserts the daemon sheds load
// explicitly (nonzero rejected counts, bounded p99) instead of melting.
//
// Reports p50/p90/p99/p99.9 latency over the post-warmup window, outcome
// counts by error code, and SLO compliance (fraction of accepted requests
// answering under --slo-ms). --json writes the report atomically.
//
// Exit codes: 0 = run complete (even with rejections: shedding is the
// daemon behaving), 1 = SLO violated (--slo-ms given and compliance <
// --slo-target), 2 = usage error, 3 = cannot connect.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/quantile.hpp"
#include "src/report/json.hpp"
#include "src/serve/json.hpp"
#include "src/serve/protocol.hpp"

namespace {

using namespace agingsim;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string socket_path = "./agingd.sock";
  std::string mode = "closed";  // closed | open
  std::string method = "work";  // work | query | campaign
  double rate = 100.0;          // open-loop offered req/s (total)
  int conns = 4;
  double duration_s = 10.0;
  double warmup_s = 1.0;
  long spin_us = 2000;       // method=work service time
  int width = 16;            // method=query/campaign
  double years = 7.0;        // method=query
  long deadline_ms = 0;      // 0 = server default
  double slo_ms = 0.0;       // 0 = no SLO check
  double slo_target = 0.99;  // required compliance when slo_ms > 0
  std::string json_path;
  /// Fairness identity stamped on every request ("" = none: the daemon
  /// then buckets by connection). Quota drills run several agingload
  /// processes with distinct ids against one daemon.
  std::string client_id;
  /// Closed loop honours retry_after_ms hints with capped, jittered
  /// exponential backoff; --no-backoff turns a closed-loop client greedy
  /// (the misbehaving client in fairness drills). Open loop never backs
  /// off — its entire point is holding the offered rate fixed.
  bool backoff = true;
  std::uint64_t seed = 1;  ///< backoff jitter PRNG seed (deterministic)
};

/// Ceiling on one backoff sleep. 2^n growth hits this after a few
/// consecutive rejections; the cap keeps a long overload from parking
/// clients for the rest of the run.
constexpr double kBackoffCapMs = 5000.0;

/// Outcome tally of one worker thread, merged after the run.
struct Tally {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t shed_refill = 0;
  std::uint64_t shed_batch = 0;
  std::uint64_t draining = 0;
  std::uint64_t timeout = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t bad_request = 0;
  std::uint64_t internal = 0;
  std::uint64_t quota_exceeded = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t missed_ticks = 0;  ///< open loop: schedule slots skipped
  std::uint64_t retries = 0;       ///< backoff sleeps taken (closed loop)
  double backoff_ms_total = 0.0;   ///< wall time spent in backoff sleeps
  std::vector<double> ok_latency_us;  ///< accepted requests, post-warmup

  void merge(const Tally& other) {
    sent += other.sent;
    ok += other.ok;
    overloaded += other.overloaded;
    shed_refill += other.shed_refill;
    shed_batch += other.shed_batch;
    draining += other.draining;
    timeout += other.timeout;
    cancelled += other.cancelled;
    bad_request += other.bad_request;
    internal += other.internal;
    quota_exceeded += other.quota_exceeded;
    transport_errors += other.transport_errors;
    missed_ticks += other.missed_ticks;
    retries += other.retries;
    backoff_ms_total += other.backoff_ms_total;
    ok_latency_us.insert(ok_latency_us.end(), other.ok_latency_us.begin(),
                         other.ok_latency_us.end());
  }
};

void print_usage(std::ostream& os) {
  os << "usage: agingload [options]\n"
        "  --socket PATH     agingd socket [./agingd.sock]\n"
        "  --mode M          closed (latency-limited) or open (fixed offered"
        " rate) [closed]\n"
        "  --method M        work|query|campaign [work]\n"
        "  --rate R          open-loop offered req/s across all connections"
        " [100]\n"
        "  --conns N         concurrent connections [4]\n"
        "  --duration-s S    measured run length [10]\n"
        "  --warmup-s S      discarded leading window [1]\n"
        "  --spin-us N       method=work service time [2000]\n"
        "  --width N         method=query/campaign multiplier width [16]\n"
        "  --years Y         method=query aging point [7]\n"
        "  --deadline-ms N   per-request deadline, 0 = server default [0]\n"
        "  --slo-ms X        latency SLO for accepted requests, 0 = off [0]\n"
        "  --slo-target F    required compliance fraction [0.99]\n"
        "  --client-id NAME  fairness identity sent with every request"
        " (1..64 of [A-Za-z0-9._-])\n"
        "  --no-backoff      ignore retry_after_ms hints in closed-loop"
        " mode (greedy client)\n"
        "  --seed N          backoff jitter PRNG seed [1]\n"
        "  --json PATH       write the report JSON to PATH (atomic)\n"
        "  --help            this text\n";
}

std::optional<Options> parse_args(int argc, char** argv, int& exit_code) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << "agingload: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    const auto need_double = [&](const char* flag, double min_v,
                                 double& out) -> bool {
      const auto v = need_value(flag);
      if (!v) return false;
      char* end = nullptr;
      const double parsed = std::strtod(v->c_str(), &end);
      if (end == v->c_str() || *end != '\0' || !(parsed >= min_v)) {
        std::cerr << "agingload: " << flag << " wants a number >= " << min_v
                  << ", got '" << *v << "'\n";
        return false;
      }
      out = parsed;
      return true;
    };
    const auto need_long = [&](const char* flag, long min_v,
                               long& out) -> bool {
      const auto v = need_value(flag);
      if (!v) return false;
      char* end = nullptr;
      const long parsed = std::strtol(v->c_str(), &end, 0);
      if (end == v->c_str() || *end != '\0' || parsed < min_v) {
        std::cerr << "agingload: " << flag << " wants an integer >= " << min_v
                  << ", got '" << *v << "'\n";
        return false;
      }
      out = parsed;
      return true;
    };
    long parsed_long = 0;
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      exit_code = 0;
      return std::nullopt;
    }
    if (arg == "--socket") {
      const auto v = need_value("--socket");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.socket_path = *v;
    } else if (arg == "--mode") {
      const auto v = need_value("--mode");
      if (!v || (*v != "closed" && *v != "open")) {
        std::cerr << "agingload: --mode wants closed|open\n";
        exit_code = 2;
        return std::nullopt;
      }
      opt.mode = *v;
    } else if (arg == "--method") {
      const auto v = need_value("--method");
      if (!v || (*v != "work" && *v != "query" && *v != "campaign")) {
        std::cerr << "agingload: --method wants work|query|campaign\n";
        exit_code = 2;
        return std::nullopt;
      }
      opt.method = *v;
    } else if (arg == "--rate") {
      if (!need_double("--rate", 0.001, opt.rate)) { exit_code = 2; return std::nullopt; }
    } else if (arg == "--conns") {
      if (!need_long("--conns", 1, parsed_long)) { exit_code = 2; return std::nullopt; }
      opt.conns = static_cast<int>(parsed_long);
    } else if (arg == "--duration-s") {
      if (!need_double("--duration-s", 0.1, opt.duration_s)) { exit_code = 2; return std::nullopt; }
    } else if (arg == "--warmup-s") {
      if (!need_double("--warmup-s", 0.0, opt.warmup_s)) { exit_code = 2; return std::nullopt; }
    } else if (arg == "--spin-us") {
      if (!need_long("--spin-us", 0, opt.spin_us)) { exit_code = 2; return std::nullopt; }
    } else if (arg == "--width") {
      if (!need_long("--width", 2, parsed_long) || parsed_long > 32) {
        exit_code = 2;
        return std::nullopt;
      }
      opt.width = static_cast<int>(parsed_long);
    } else if (arg == "--years") {
      if (!need_double("--years", 0.0, opt.years)) { exit_code = 2; return std::nullopt; }
    } else if (arg == "--deadline-ms") {
      if (!need_long("--deadline-ms", 0, opt.deadline_ms)) { exit_code = 2; return std::nullopt; }
    } else if (arg == "--slo-ms") {
      if (!need_double("--slo-ms", 0.0, opt.slo_ms)) { exit_code = 2; return std::nullopt; }
    } else if (arg == "--slo-target") {
      if (!need_double("--slo-target", 0.0, opt.slo_target)) { exit_code = 2; return std::nullopt; }
    } else if (arg == "--client-id") {
      const auto v = need_value("--client-id");
      if (!v || !serve::valid_client_id(*v)) {
        std::cerr << "agingload: --client-id wants 1..64 chars of"
                     " [A-Za-z0-9._-]\n";
        exit_code = 2;
        return std::nullopt;
      }
      opt.client_id = *v;
    } else if (arg == "--no-backoff") {
      opt.backoff = false;
    } else if (arg == "--seed") {
      if (!need_long("--seed", 0, parsed_long)) { exit_code = 2; return std::nullopt; }
      opt.seed = static_cast<std::uint64_t>(parsed_long);
    } else if (arg == "--json") {
      const auto v = need_value("--json");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.json_path = *v;
    } else {
      std::cerr << "agingload: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      exit_code = 2;
      return std::nullopt;
    }
  }
  return opt;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string build_request(const Options& opt, std::uint64_t id) {
  JsonWriter json;
  json.begin_object();
  json.key("id").value(id);
  json.key("method").value(opt.method);
  if (!opt.client_id.empty()) json.key("client_id").value(opt.client_id);
  if (opt.deadline_ms > 0) {
    json.key("deadline_ms").value(static_cast<std::int64_t>(opt.deadline_ms));
  }
  json.key("params").begin_object();
  if (opt.method == "work") {
    json.key("spin_us").value(static_cast<std::int64_t>(opt.spin_us));
  } else if (opt.method == "query") {
    json.key("width").value(opt.width);
    json.key("years").value(opt.years);
    // Varying the seed across requests defeats the aged-state cache on
    // purpose in some drills; here every request shares the default seed
    // so steady state exercises the cache-hit fast path.
  } else {  // campaign
    json.key("width").value(opt.width);
    json.key("trials").value(std::int64_t{8});
    json.key("ops").value(std::int64_t{200});
  }
  json.end_object();
  json.end_object();
  return json.str();
}

/// splitmix64 — the jitter PRNG. Deterministic per (seed, draw index), so
/// a fairness drill replays its exact backoff schedule.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Sends one request and classifies the response into the tally. Returns
/// false on a transport error (caller reconnects). `rejected` /
/// `retry_after_ms` report an admission rejection and its hint, which the
/// closed loop turns into backoff.
bool do_request(int fd, const Options& opt, std::uint64_t id, bool measured,
                Tally& tally, bool& rejected, long& retry_after_ms) {
  rejected = false;
  retry_after_ms = 0;
  const std::string request = build_request(opt, id);
  ++tally.sent;
  const Clock::time_point t0 = Clock::now();
  if (!serve::write_frame_fd(fd, request)) {
    ++tally.transport_errors;
    return false;
  }
  const std::optional<std::string> reply = serve::read_frame_fd(fd);
  if (!reply.has_value()) {
    ++tally.transport_errors;
    return false;
  }
  const double latency_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
  serve::JsonError parse_error;
  const auto doc = serve::parse_json(*reply, &parse_error);
  if (!doc.has_value() || doc->kind() != serve::JsonValue::Kind::kObject) {
    ++tally.transport_errors;
    return true;  // stream still framed; count and continue
  }
  if (doc->bool_or("ok", false)) {
    ++tally.ok;
    if (measured) tally.ok_latency_us.push_back(latency_us);
    return true;
  }
  const serve::JsonValue* error = doc->find("error");
  const std::string code =
      error != nullptr ? error->str_or("code", "internal") : "internal";
  if (code == "overloaded") ++tally.overloaded;
  else if (code == "shed_refill") ++tally.shed_refill;
  else if (code == "shed_batch") ++tally.shed_batch;
  else if (code == "quota_exceeded") ++tally.quota_exceeded;
  else if (code == "draining") ++tally.draining;
  else if (code == "timeout") ++tally.timeout;
  else if (code == "cancelled") ++tally.cancelled;
  else if (code == "bad_request") ++tally.bad_request;
  else ++tally.internal;
  if (code == "overloaded" || code == "shed_refill" ||
      code == "shed_batch" || code == "quota_exceeded") {
    rejected = true;
    if (error != nullptr) {
      retry_after_ms = static_cast<long>(error->i64_or("retry_after_ms", 0));
    }
  }
  return true;
}

// Shared repo-wide convention (src/core/quantile.hpp): latency percentiles
// stay interpolated (numpy/R type 7), campaign quantiles are nearest-rank.
double percentile(const std::vector<double>& sorted, double q) {
  return quantile::interpolated(sorted, q);
}

int run_load(const Options& opt) {
  // Fail fast if the daemon is not there at all.
  {
    const int probe = connect_unix(opt.socket_path);
    if (probe < 0) {
      std::cerr << "agingload: cannot connect to " << opt.socket_path << ": "
                << std::strerror(errno) << "\n";
      return 3;
    }
    ::close(probe);
  }
  std::signal(SIGPIPE, SIG_IGN);

  const Clock::time_point start = Clock::now();
  const Clock::time_point warmup_end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(opt.warmup_s));
  const Clock::time_point end =
      warmup_end + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(opt.duration_s));

  std::vector<Tally> tallies(static_cast<std::size_t>(opt.conns));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opt.conns));
  const bool open_loop = opt.mode == "open";
  const double per_conn_rate = opt.rate / static_cast<double>(opt.conns);

  for (int c = 0; c < opt.conns; ++c) {
    threads.emplace_back([&, c] {
      Tally& tally = tallies[static_cast<std::size_t>(c)];
      int fd = connect_unix(opt.socket_path);
      std::uint64_t id = static_cast<std::uint64_t>(c) << 32;
      const auto interval = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / per_conn_rate));
      Clock::time_point next = Clock::now();
      std::uint64_t rng =
          opt.seed ^ (static_cast<std::uint64_t>(c) * 0xD1B54A32D192ED03ull);
      int consecutive_rejections = 0;
      while (Clock::now() < end) {
        if (open_loop) {
          // Absolute scheduling: intervals are anchored to the original
          // grid, so offered rate does not sag when a response is slow —
          // slots that passed while blocked are counted as missed.
          const Clock::time_point now = Clock::now();
          if (now < next) {
            std::this_thread::sleep_until(next);
          } else {
            const auto behind = now - next;
            const auto skipped = behind / interval;
            tally.missed_ticks += static_cast<std::uint64_t>(skipped);
            next += skipped * interval;
          }
          next += interval;
        }
        if (fd < 0) {
          fd = connect_unix(opt.socket_path);
          if (fd < 0) {
            ++tally.transport_errors;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
          }
        }
        const bool measured = Clock::now() >= warmup_end;
        bool was_rejected = false;
        long hint_ms = 0;
        if (!do_request(fd, opt, ++id, measured, tally, was_rejected,
                        hint_ms)) {
          ::close(fd);
          fd = -1;
          continue;
        }
        if (open_loop || !opt.backoff) continue;
        // Closed loop honours the daemon's hint: exponential growth over
        // consecutive rejections, capped, with ±25% jitter so a fleet of
        // clients rejected together does not retry in lockstep.
        if (!was_rejected) {
          consecutive_rejections = 0;
          continue;
        }
        consecutive_rejections = std::min(consecutive_rejections + 1, 16);
        const double base_ms = hint_ms > 0 ? static_cast<double>(hint_ms)
                                           : 10.0;
        const double exp_ms = std::min(
            kBackoffCapMs,
            base_ms * static_cast<double>(1u << std::min(
                          consecutive_rejections - 1, 10)));
        const double jitter =
            0.75 + 0.5 * (static_cast<double>(splitmix64(rng) >> 11) *
                          0x1.0p-53);
        double sleep_ms = std::min(kBackoffCapMs, exp_ms * jitter);
        // Never sleep past the end of the run.
        const double left_ms = std::chrono::duration<double, std::milli>(
                                   end - Clock::now())
                                   .count();
        if (left_ms <= 0.0) continue;
        sleep_ms = std::min(sleep_ms, left_ms);
        ++tally.retries;
        tally.backoff_ms_total += sleep_ms;
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      if (fd >= 0) ::close(fd);
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  Tally total;
  for (const Tally& t : tallies) total.merge(t);
  std::sort(total.ok_latency_us.begin(), total.ok_latency_us.end());
  const auto& lat = total.ok_latency_us;
  double mean_us = 0.0;
  for (const double v : lat) mean_us += v;
  if (!lat.empty()) mean_us /= static_cast<double>(lat.size());

  const std::uint64_t rejected = total.overloaded + total.shed_refill +
                                 total.shed_batch + total.quota_exceeded +
                                 total.draining;
  double slo_compliance = 1.0;
  if (opt.slo_ms > 0.0 && !lat.empty()) {
    const auto under = std::upper_bound(lat.begin(), lat.end(),
                                        opt.slo_ms * 1000.0);
    slo_compliance = static_cast<double>(under - lat.begin()) /
                     static_cast<double>(lat.size());
  }

  JsonWriter json;
  json.begin_object();
  json.key("tool").value("agingload");
  json.key("mode").value(opt.mode);
  json.key("method").value(opt.method);
  if (!opt.client_id.empty()) json.key("client_id").value(opt.client_id);
  json.key("conns").value(opt.conns);
  if (opt.mode == "open") json.key("offered_rps").value(opt.rate);
  json.key("duration_s").value(opt.duration_s);
  json.key("warmup_s").value(opt.warmup_s);
  json.key("sent").value(total.sent);
  json.key("ok").value(total.ok);
  json.key("rejected").begin_object();
  json.key("overloaded").value(total.overloaded);
  json.key("shed_refill").value(total.shed_refill);
  json.key("shed_batch").value(total.shed_batch);
  json.key("quota_exceeded").value(total.quota_exceeded);
  json.key("draining").value(total.draining);
  json.end_object();
  json.key("timeout").value(total.timeout);
  json.key("cancelled").value(total.cancelled);
  json.key("bad_request").value(total.bad_request);
  json.key("internal").value(total.internal);
  json.key("transport_errors").value(total.transport_errors);
  json.key("missed_ticks").value(total.missed_ticks);
  json.key("retries").value(total.retries);
  json.key("backoff_ms_total").value(total.backoff_ms_total);
  json.key("achieved_rps")
      .value(static_cast<double>(total.sent) / elapsed_s);
  json.key("ok_rps").value(static_cast<double>(total.ok) / elapsed_s);
  json.key("latency_us").begin_object();
  json.key("samples").value(static_cast<std::uint64_t>(lat.size()));
  json.key("mean").value(mean_us);
  json.key("p50").value(percentile(lat, 0.50));
  json.key("p90").value(percentile(lat, 0.90));
  json.key("p99").value(percentile(lat, 0.99));
  json.key("p999").value(percentile(lat, 0.999));
  json.key("max").value(lat.empty() ? 0.0 : lat.back());
  json.end_object();
  if (opt.slo_ms > 0.0) {
    json.key("slo_ms").value(opt.slo_ms);
    json.key("slo_target").value(opt.slo_target);
    json.key("slo_compliance").value(slo_compliance);
  }
  json.end_object();

  if (opt.json_path.empty()) {
    std::cout << json.str() << "\n";
  } else {
    const std::string tmp = opt.json_path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) {
        std::cerr << "agingload: cannot write " << tmp << "\n";
        return 2;
      }
      out << json.str() << "\n";
    }
    if (std::rename(tmp.c_str(), opt.json_path.c_str()) != 0) {
      std::cerr << "agingload: cannot rename " << tmp << "\n";
      return 2;
    }
  }
  std::fprintf(stderr,
               "agingload: %llu sent, %llu ok, %llu rejected, p99 %.1f ms\n",
               static_cast<unsigned long long>(total.sent),
               static_cast<unsigned long long>(total.ok),
               static_cast<unsigned long long>(rejected),
               percentile(lat, 0.99) / 1000.0);
  if (opt.slo_ms > 0.0 && slo_compliance < opt.slo_target) {
    std::fprintf(stderr, "agingload: SLO violated: %.4f < %.4f\n",
                 slo_compliance, opt.slo_target);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int exit_code = 0;
  const auto opt = parse_args(argc, argv, exit_code);
  if (!opt) return exit_code;
  try {
    return run_load(*opt);
  } catch (const std::exception& e) {
    std::cerr << "agingload: fatal: " << e.what() << "\n";
    return 70;
  }
}
