// agingd — the aging-simulation serving daemon (docs/SERVING.md).
//
// Long-lived front-end of src/serve/: accepts query/campaign/work requests
// as length-prefixed JSON over a Unix-domain socket, schedules them on a
// bounded admission queue with explicit overload rejection and graceful
// degradation tiers, caches aged-netlist state, and checkpoints campaigns
// so a daemon killed mid-campaign resumes byte-identically after restart.
//
// Shutdown: SIGTERM or SIGINT (or a `shutdown` request) starts a graceful
// drain — stop accepting, finish or checkpoint in-flight work, flush
// observability artifacts — then exits 0.
//
// Exit codes: 0 = clean (including signal-initiated drain), 2 = usage
// error, 3 = cannot bind the socket.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include <unistd.h>

#include "src/core/env.hpp"
#include "src/obs/artifacts.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/serve/server.hpp"

namespace {

using namespace agingsim;

// Self-pipe shared with the signal handlers: the only async-signal-safe
// way to get from a signal to the drain sequence is write(2) on a
// pre-opened fd; a watcher thread does the actual draining.
int g_signal_pipe[2] = {-1, -1};
volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) {
  g_signal = sig;
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

struct Options {
  serve::ServerConfig server;
  std::string trace_path;
  std::string metrics_path;
  bool quiet = false;
};

void print_usage(std::ostream& os) {
  os << "usage: agingd [options]\n"
        "  --socket PATH        Unix socket path"
        " [$AGINGSIM_SERVE_SOCKET or ./agingd.sock]\n"
        "  --workers N          worker threads [$AGINGSIM_SERVE_WORKERS or"
        " 4]\n"
        "  --queue N            admission queue capacity"
        " [$AGINGSIM_SERVE_QUEUE or 64]\n"
        "  --deadline-ms N      default per-request deadline, 0 = none"
        " [$AGINGSIM_SERVE_DEADLINE_MS or 30000]\n"
        "  --drain-grace-ms N   drain grace before cancelling in-flight"
        " work [5000]\n"
        "  --cache-mb N         aged-state cache budget in MiB"
        " [$AGINGSIM_SERVE_CACHE_MB or 64]\n"
        "  --quota-rate R       per-client token-bucket refill req/s, 0 ="
        " quotas off [$AGINGSIM_SERVE_QUOTA_RATE or 0]\n"
        "  --quota-burst B      per-client token-bucket capacity"
        " [$AGINGSIM_SERVE_QUOTA_BURST or 32]\n"
        "  --read-deadline-ms N close a connection whose frame stays"
        " incomplete this long, 0 = off\n"
        "                       [$AGINGSIM_SERVE_READ_DEADLINE_MS or 10000]\n"
        "  --idle-timeout-ms N  close connections idle this long (no partial"
        " frame, nothing in\n"
        "                       flight), 0 = never"
        " [$AGINGSIM_SERVE_IDLE_TIMEOUT_MS or 0]\n"
        "  --max-inflight N     per-connection cap on queued+running"
        " requests, 0 = off\n"
        "                       [$AGINGSIM_SERVE_MAX_INFLIGHT or 32]\n"
        "  --checkpoint-dir D   campaign checkpoint root"
        " [$AGINGSIM_SERVE_CHECKPOINT_DIR or none]\n"
        "  --kernel NAME        step kernel for query/campaign traces:\n"
        "                       dense|sparse|batch [$AGINGSIM_KERNEL or"
        " sparse]\n"
        "  --batch-guard-ps F   batch-kernel scalar-replay guard margin in\n"
        "                       ps [$AGINGSIM_BATCH_GUARD_PS or 0 = off]\n"
        "  --trace PATH         write a Chrome trace-event file on exit\n"
        "  --metrics PATH       write a metrics JSON snapshot on exit\n"
        "  --quiet              suppress startup/drain notes on stderr\n"
        "  --help               this text\n";
}

std::optional<Options> parse_args(int argc, char** argv, int& exit_code) {
  Options opt;
  // Env defaults first; flags override below.
  opt.server.socket_path =
      env::str_var("AGINGSIM_SERVE_SOCKET").value_or("./agingd.sock");
  opt.server.workers =
      static_cast<int>(env::long_or("AGINGSIM_SERVE_WORKERS", 4, 1, 256));
  opt.server.admission.capacity = static_cast<std::size_t>(
      env::long_or("AGINGSIM_SERVE_QUEUE", 64, 1, 1 << 20));
  opt.server.default_deadline_ms =
      env::long_or("AGINGSIM_SERVE_DEADLINE_MS", 30'000, 0);
  opt.server.cache_budget_bytes =
      static_cast<std::size_t>(
          env::long_or("AGINGSIM_SERVE_CACHE_MB", 64, 0, 1 << 20))
      << 20;
  opt.server.service.checkpoint_root =
      env::str_var("AGINGSIM_SERVE_CHECKPOINT_DIR").value_or("");
  opt.server.admission.fairness.quota_rate_per_s =
      env::double_or("AGINGSIM_SERVE_QUOTA_RATE", 0.0, 0.0);
  opt.server.admission.fairness.quota_burst =
      env::double_or("AGINGSIM_SERVE_QUOTA_BURST", 32.0, 1.0);
  opt.server.read_deadline_ms =
      env::long_or("AGINGSIM_SERVE_READ_DEADLINE_MS", 10'000, 0);
  opt.server.idle_timeout_ms =
      env::long_or("AGINGSIM_SERVE_IDLE_TIMEOUT_MS", 0, 0);
  opt.server.max_inflight_per_conn = static_cast<std::uint32_t>(
      env::long_or("AGINGSIM_SERVE_MAX_INFLIGHT", 32, 0, 1 << 20));

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << "agingd: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    const auto need_long = [&](const char* flag, long min_v,
                               long& out) -> bool {
      const auto v = need_value(flag);
      if (!v) return false;
      const auto parsed = env::parse_long(*v, 0);
      if (!parsed || *parsed < min_v) {
        std::cerr << "agingd: " << flag << " wants an integer >= " << min_v
                  << ", got '" << *v << "'\n";
        return false;
      }
      out = *parsed;
      return true;
    };
    long parsed = 0;
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      exit_code = 0;
      return std::nullopt;
    }
    if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--socket") {
      const auto v = need_value("--socket");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.server.socket_path = *v;
    } else if (arg == "--workers") {
      if (!need_long("--workers", 1, parsed)) { exit_code = 2; return std::nullopt; }
      opt.server.workers = static_cast<int>(parsed);
    } else if (arg == "--queue") {
      if (!need_long("--queue", 1, parsed)) { exit_code = 2; return std::nullopt; }
      opt.server.admission.capacity = static_cast<std::size_t>(parsed);
    } else if (arg == "--deadline-ms") {
      if (!need_long("--deadline-ms", 0, parsed)) { exit_code = 2; return std::nullopt; }
      opt.server.default_deadline_ms = parsed;
    } else if (arg == "--drain-grace-ms") {
      if (!need_long("--drain-grace-ms", 0, parsed)) { exit_code = 2; return std::nullopt; }
      opt.server.drain_grace_ms = parsed;
    } else if (arg == "--cache-mb") {
      if (!need_long("--cache-mb", 0, parsed)) { exit_code = 2; return std::nullopt; }
      opt.server.cache_budget_bytes = static_cast<std::size_t>(parsed) << 20;
    } else if (arg == "--quota-rate") {
      const auto v = need_value("--quota-rate");
      if (!v || !env::parse_double(*v).has_value() ||
          *env::parse_double(*v) < 0.0) {
        std::cerr << "agingd: --quota-rate wants a number >= 0\n";
        exit_code = 2;
        return std::nullopt;
      }
      opt.server.admission.fairness.quota_rate_per_s = *env::parse_double(*v);
    } else if (arg == "--quota-burst") {
      const auto v = need_value("--quota-burst");
      if (!v || !env::parse_double(*v).has_value() ||
          *env::parse_double(*v) < 1.0) {
        std::cerr << "agingd: --quota-burst wants a number >= 1\n";
        exit_code = 2;
        return std::nullopt;
      }
      opt.server.admission.fairness.quota_burst = *env::parse_double(*v);
    } else if (arg == "--read-deadline-ms") {
      if (!need_long("--read-deadline-ms", 0, parsed)) { exit_code = 2; return std::nullopt; }
      opt.server.read_deadline_ms = parsed;
    } else if (arg == "--idle-timeout-ms") {
      if (!need_long("--idle-timeout-ms", 0, parsed)) { exit_code = 2; return std::nullopt; }
      opt.server.idle_timeout_ms = parsed;
    } else if (arg == "--max-inflight") {
      if (!need_long("--max-inflight", 0, parsed)) { exit_code = 2; return std::nullopt; }
      opt.server.max_inflight_per_conn = static_cast<std::uint32_t>(parsed);
    } else if (arg == "--checkpoint-dir") {
      const auto v = need_value("--checkpoint-dir");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.server.service.checkpoint_root = *v;
    } else if (arg == "--kernel") {
      const auto v = need_value("--kernel");
      if (!v || (*v != "dense" && *v != "sparse" && *v != "batch")) {
        std::cerr << "agingd: --kernel wants dense|sparse|batch\n";
        exit_code = 2;
        return std::nullopt;
      }
      // Exported rather than stored: every trace path (query lane, batch
      // campaign lane) resolves kAuto through AGINGSIM_KERNEL.
      ::setenv("AGINGSIM_KERNEL", v->c_str(), 1);
    } else if (arg == "--batch-guard-ps") {
      const auto v = need_value("--batch-guard-ps");
      if (!v || !env::parse_double(*v).has_value() ||
          *env::parse_double(*v) < 0.0) {
        std::cerr << "agingd: --batch-guard-ps wants a number >= 0\n";
        exit_code = 2;
        return std::nullopt;
      }
      ::setenv("AGINGSIM_BATCH_GUARD_PS", v->c_str(), 1);
    } else if (arg == "--trace") {
      const auto v = need_value("--trace");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.trace_path = *v;
    } else if (arg == "--metrics") {
      const auto v = need_value("--metrics");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.metrics_path = *v;
    } else {
      std::cerr << "agingd: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      exit_code = 2;
      return std::nullopt;
    }
  }
  return opt;
}

int run_daemon(const Options& opt) {
  // The metrics endpoint and the serve.* counters are part of the daemon's
  // contract, so metrics are always on; tracing stays opt-in (flag or
  // AGINGSIM_TRACE).
  obs::set_metrics_enabled(true);
  if (!opt.trace_path.empty()) obs::set_trace_enabled(true);

  if (pipe(g_signal_pipe) != 0) {
    std::cerr << "agingd: pipe: " << std::strerror(errno) << "\n";
    return 3;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  // One-shot: the first signal drains gracefully, a second one gets the
  // default disposition — a stuck drain can always be killed.
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  // A client vanishing mid-reply must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  serve::Server server(opt.server);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "agingd: " << error << "\n";
    return 3;
  }
  if (!opt.quiet) {
    std::fprintf(stderr,
                 "agingd: listening on %s (%d workers, queue %zu, cache %zu"
                 " MiB)\n",
                 opt.server.socket_path.c_str(), opt.server.workers,
                 opt.server.admission.capacity,
                 opt.server.cache_budget_bytes >> 20);
  }

  // Watcher: turns a signal byte into drain(). Released at the end either
  // by the signal itself or by the main thread (shutdown-request path).
  std::thread watcher([&server] {
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    server.drain();
  });

  server.wait();  // returns once drained (signal or `shutdown` request)
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
  watcher.join();
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);

  if (!opt.quiet) {
    if (g_signal != 0) {
      std::fprintf(stderr, "agingd: drained after signal %d\n",
                   static_cast<int>(g_signal));
    } else {
      std::fprintf(stderr, "agingd: drained\n");
    }
  }
  if (!opt.trace_path.empty()) (void)obs::write_trace_json(opt.trace_path);
  if (!opt.metrics_path.empty()) {
    (void)obs::write_metrics_json(opt.metrics_path);
  }
  obs::flush_env_artifacts();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int exit_code = 0;
  const auto opt = parse_args(argc, argv, exit_code);
  if (!opt) return exit_code;
  try {
    return run_daemon(*opt);
  } catch (const std::exception& e) {
    std::cerr << "agingd: fatal: " << e.what() << "\n";
    return 70;
  }
}
