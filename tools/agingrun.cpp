// agingrun — crash-safe campaign runner (docs/ROBUSTNESS.md).
//
// Front-end of the src/runtime/ execution layer: runs a FaultCampaign, a
// period sweep, or a Monte-Carlo process-variation + stochastic-aging
// campaign (--campaign mc, docs/MODEL.md) under the RobustRunner with
// checkpoint/resume, watchdog
// deadlines, retry-with-backoff, poison-task quarantine and deterministic
// chaos injection. A run killed at any instant (SIGKILL, OOM, chaos crash)
// and restarted with --resume completes the remaining work units and
// emits JSON byte-identical to an uninterrupted run — the property the CI
// kill-and-resume job asserts with cmp(1).
//
// SIGINT/SIGTERM are handled cooperatively: the handler pokes a self-pipe,
// a watcher thread cancels the runner's stop token, in-flight units wind
// down, completed units stay checkpointed, trace/metrics artifacts are
// flushed, and the process exits 130 (SIGINT) or 143 (SIGTERM) — so an
// interrupted campaign resumes with --resume instead of starting over.
//
// Exit codes: 0 = campaign complete, every unit ok;
//             1 = campaign complete but some units quarantined;
//             2 = usage error;
//             3 = checkpoint directory unusable;
//             86 = chaos-simulated crash (resume loops restart on this);
//             130/143 = interrupted by SIGINT/SIGTERM, partial results
//                       checkpointed.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "src/core/env.hpp"
#include "src/fault/campaign.hpp"
#include "src/mc/mc_campaign.hpp"
#include "src/mc/mc_report.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/report/json.hpp"
#include "src/runtime/chaos.hpp"
#include "src/runtime/checkpoint.hpp"
#include "src/runtime/robust_runner.hpp"
#include "src/runtime/serial.hpp"

namespace {

using namespace agingsim;

// Self-pipe signal plumbing: the handler does the only async-signal-safe
// things possible (set a flag, write one byte); a watcher thread turns the
// byte into a cooperative CancelToken::cancel().
int g_signal_pipe[2] = {-1, -1};
volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) {
  g_signal = sig;
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Installs the handlers and runs the watcher; the destructor releases the
/// watcher so every return path of run_tool() joins it.
class SignalGuard {
 public:
  explicit SignalGuard(runtime::CancelToken& stop) {
    if (pipe(g_signal_pipe) != 0) return;
    armed_ = true;
    struct sigaction sa{};
    sa.sa_handler = on_signal;
    // One-shot: a second signal gets the default disposition, so a stuck
    // drain is never more than one more kill away.
    sa.sa_flags = SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    watcher_ = std::thread([&stop] {
      char byte = 0;
      while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
      }
      if (byte == 's') stop.cancel();
    });
  }
  ~SignalGuard() {
    if (!armed_) return;
    const char byte = 'q';
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
    watcher_.join();
    ::close(g_signal_pipe[0]);
    ::close(g_signal_pipe[1]);
    g_signal_pipe[0] = g_signal_pipe[1] = -1;
  }
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

 private:
  bool armed_ = false;
  std::thread watcher_;
};

struct Options {
  std::string campaign = "fault";  // fault | sweep | mc
  int width = 16;
  int trials = 48;
  std::size_t ops = 1500;
  bool ops_set = false;  // mc defaults ops to 256 unless given
  int sites_per_trial = 2;
  FaultKind kind = FaultKind::kDelayOutlier;
  double delay_factor = 8.0;
  std::uint64_t seed = 0xFA17;
  double period_frac = 0.58;  // of the fresh critical path
  int sweep_points = 32;
  std::string checkpoint_dir;
  bool resume = false;
  long deadline_ms = 0;
  int max_retries = 3;
  long backoff_ms = 25;
  std::string chaos_spec;  // empty = AGINGSIM_CHAOS / none
  // Monte-Carlo campaign shape (--campaign mc); trials/ops/seed above are
  // shared with the fault campaign.
  std::string arch = "all";  // am | cb | rb | all
  int block = 32;
  std::string years = "0,7";
  int strata = 16;
  double sigma_random = 0.05;
  double sigma_grid = 0.03;
  double sigma_die = 0.03;
  double sigma_aging = 0.10;
  int surface_points = 29;
  std::string json_path = "-";
  std::string trace_path;    // empty = AGINGSIM_TRACE / off
  std::string metrics_path;  // empty = AGINGSIM_METRICS / off
  bool quiet = false;
};

void print_usage(std::ostream& os) {
  os << "usage: agingrun [options]\n"
        "  --campaign NAME    fault (trial campaign), sweep (period sweep)\n"
        "                     or mc (Monte-Carlo variation + stochastic\n"
        "                     aging, docs/MODEL.md) [fault]\n"
        "  --width N          multiplier width in [2,32] [16]\n"
        "  --trials N         trials (fault) / dies per arch (mc) [48]\n"
        "  --ops N            operations per trial [1500; mc: 256]\n"
        "  --sites N          fault sites per trial [2]\n"
        "  --kind NAME        stuck0|stuck1|transient|delay [delay]\n"
        "  --delay-factor F   delay multiplier for kind=delay [8.0]\n"
        "  --seed S           campaign seed [0xFA17]\n"
        "  --period-frac F    cycle period as a fraction of the fresh\n"
        "                     critical path [0.58]\n"
        "  --sweep-points N   points for --campaign sweep [32]\n"
        "  --arch NAME        mc: am|cb|rb|all [all]\n"
        "  --block N          mc: trials per checkpoint unit [32]\n"
        "  --years LIST       mc: comma-separated evaluation years [0,7]\n"
        "  --strata N         mc: die-normal strata (variance reduction,\n"
        "                     1 = plain sampling) [16]\n"
        "  --sigma-random F   mc: independent per-gate lognormal sigma"
        " [0.05]\n"
        "  --sigma-grid F     mc: correlated level-grid lognormal sigma"
        " [0.03]\n"
        "  --sigma-die F      mc: die-to-die lognormal sigma [0.03]\n"
        "  --sigma-aging F    mc: stochastic-aging jitter sigma [0.10]\n"
        "  --surface-points N mc: failure-surface period samples [29]\n"
        "  --checkpoint-dir D persist completed units under D (enables\n"
        "                     crash-safety; no dir = in-memory only)\n"
        "  --resume           keep and reuse existing checkpoints (without\n"
        "                     this flag a fresh run clears the directory)\n"
        "  --deadline-ms N    per-attempt watchdog deadline, 0 = off [0]\n"
        "  --max-retries N    retry budget for transient failures [3]\n"
        "  --backoff-ms N     base backoff before the first retry [25]\n"
        "  --chaos SPEC       seed:rate[:actions], actions in [tpsc]\n"
        "                     (overrides AGINGSIM_CHAOS)\n"
        "  --kernel NAME      step kernel: dense|sparse|batch (overrides\n"
        "                     AGINGSIM_KERNEL) [sparse]\n"
        "  --batch-guard-ps F batch-kernel scalar-replay guard margin in ps\n"
        "                     (overrides AGINGSIM_BATCH_GUARD_PS) [0 = off]\n"
        "  --json PATH        write campaign JSON to PATH ('-' = stdout)\n"
        "  --trace PATH       record spans, write a Chrome trace-event\n"
        "                     file to PATH (chrome://tracing, Perfetto)\n"
        "  --metrics PATH     record metrics, write a JSON snapshot to\n"
        "                     PATH (see docs/OBSERVABILITY.md)\n"
        "  --quiet            suppress the runtime summary on stderr\n"
        "  --help             this text\n";
}

std::optional<FaultKind> parse_kind(const std::string& name) {
  if (name == "stuck0") return FaultKind::kStuckAt0;
  if (name == "stuck1") return FaultKind::kStuckAt1;
  if (name == "transient") return FaultKind::kTransient;
  if (name == "delay") return FaultKind::kDelayOutlier;
  return std::nullopt;
}

std::optional<std::vector<MultiplierArch>> parse_arches(
    const std::string& name) {
  if (name == "am") return std::vector{MultiplierArch::kArray};
  if (name == "cb") return std::vector{MultiplierArch::kColumnBypass};
  if (name == "rb") return std::vector{MultiplierArch::kRowBypass};
  if (name == "all") {
    return std::vector{MultiplierArch::kArray, MultiplierArch::kColumnBypass,
                       MultiplierArch::kRowBypass};
  }
  return std::nullopt;
}

/// "0,3.5,7" -> {0.0, 3.5, 7.0}; nullopt on malformed or empty input.
std::optional<std::vector<double>> parse_years(const std::string& spec) {
  std::vector<double> years;
  const char* p = spec.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p || v < 0.0) return std::nullopt;
    years.push_back(v);
    p = end;
    if (*p == ',') {
      ++p;
    } else if (*p != '\0') {
      return std::nullopt;
    }
  }
  if (years.empty()) return std::nullopt;
  return years;
}

std::optional<Options> parse_args(int argc, char** argv, int& exit_code) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << "agingrun: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    const auto need_long = [&](const char* flag, long min_v,
                               long& out) -> bool {
      const auto v = need_value(flag);
      if (!v) return false;
      char* end = nullptr;
      const long parsed = std::strtol(v->c_str(), &end, 0);
      if (end == v->c_str() || *end != '\0' || parsed < min_v) {
        std::cerr << "agingrun: " << flag << " wants an integer >= " << min_v
                  << ", got '" << *v << "'\n";
        return false;
      }
      out = parsed;
      return true;
    };
    long parsed = 0;
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      exit_code = 0;
      return std::nullopt;
    }
    if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--campaign") {
      const auto v = need_value("--campaign");
      if (!v || (*v != "fault" && *v != "sweep" && *v != "mc")) {
        std::cerr << "agingrun: --campaign wants fault|sweep|mc\n";
        exit_code = 2;
        return std::nullopt;
      }
      opt.campaign = *v;
    } else if (arg == "--width") {
      if (!need_long("--width", 2, parsed) || parsed > 32) {
        exit_code = 2;
        return std::nullopt;
      }
      opt.width = static_cast<int>(parsed);
    } else if (arg == "--trials") {
      if (!need_long("--trials", 1, parsed)) { exit_code = 2; return std::nullopt; }
      opt.trials = static_cast<int>(parsed);
    } else if (arg == "--ops") {
      if (!need_long("--ops", 1, parsed)) { exit_code = 2; return std::nullopt; }
      opt.ops = static_cast<std::size_t>(parsed);
      opt.ops_set = true;
    } else if (arg == "--sites") {
      if (!need_long("--sites", 1, parsed)) { exit_code = 2; return std::nullopt; }
      opt.sites_per_trial = static_cast<int>(parsed);
    } else if (arg == "--kind") {
      const auto v = need_value("--kind");
      const auto kind = v ? parse_kind(*v) : std::nullopt;
      if (!kind) {
        std::cerr << "agingrun: --kind wants stuck0|stuck1|transient|delay\n";
        exit_code = 2;
        return std::nullopt;
      }
      opt.kind = *kind;
    } else if (arg == "--delay-factor") {
      const auto v = need_value("--delay-factor");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.delay_factor = std::atof(v->c_str());
      if (!(opt.delay_factor > 0.0)) {
        std::cerr << "agingrun: --delay-factor must be > 0\n";
        exit_code = 2;
        return std::nullopt;
      }
    } else if (arg == "--seed") {
      const auto v = need_value("--seed");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.seed = std::strtoull(v->c_str(), nullptr, 0);
    } else if (arg == "--period-frac") {
      const auto v = need_value("--period-frac");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.period_frac = std::atof(v->c_str());
      if (!(opt.period_frac > 0.0)) {
        std::cerr << "agingrun: --period-frac must be > 0\n";
        exit_code = 2;
        return std::nullopt;
      }
    } else if (arg == "--sweep-points") {
      if (!need_long("--sweep-points", 1, parsed)) { exit_code = 2; return std::nullopt; }
      opt.sweep_points = static_cast<int>(parsed);
    } else if (arg == "--arch") {
      const auto v = need_value("--arch");
      if (!v || !parse_arches(*v).has_value()) {
        std::cerr << "agingrun: --arch wants am|cb|rb|all\n";
        exit_code = 2;
        return std::nullopt;
      }
      opt.arch = *v;
    } else if (arg == "--block") {
      if (!need_long("--block", 1, parsed)) { exit_code = 2; return std::nullopt; }
      opt.block = static_cast<int>(parsed);
    } else if (arg == "--years") {
      const auto v = need_value("--years");
      if (!v || !parse_years(*v).has_value()) {
        std::cerr << "agingrun: --years wants a comma-separated list of\n"
                     "non-negative numbers, e.g. 0,3.5,7\n";
        exit_code = 2;
        return std::nullopt;
      }
      opt.years = *v;
    } else if (arg == "--strata") {
      if (!need_long("--strata", 1, parsed)) { exit_code = 2; return std::nullopt; }
      opt.strata = static_cast<int>(parsed);
    } else if (arg == "--sigma-random" || arg == "--sigma-grid" ||
               arg == "--sigma-die" || arg == "--sigma-aging") {
      const auto v = need_value(arg.c_str());
      if (!v || !env::parse_double(*v).has_value() ||
          *env::parse_double(*v) < 0.0) {
        std::cerr << "agingrun: " << arg << " wants a number >= 0\n";
        exit_code = 2;
        return std::nullopt;
      }
      const double sigma = *env::parse_double(*v);
      if (arg == "--sigma-random") opt.sigma_random = sigma;
      if (arg == "--sigma-grid") opt.sigma_grid = sigma;
      if (arg == "--sigma-die") opt.sigma_die = sigma;
      if (arg == "--sigma-aging") opt.sigma_aging = sigma;
    } else if (arg == "--surface-points") {
      if (!need_long("--surface-points", 1, parsed)) { exit_code = 2; return std::nullopt; }
      opt.surface_points = static_cast<int>(parsed);
    } else if (arg == "--checkpoint-dir") {
      const auto v = need_value("--checkpoint-dir");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.checkpoint_dir = *v;
    } else if (arg == "--deadline-ms") {
      if (!need_long("--deadline-ms", 0, parsed)) { exit_code = 2; return std::nullopt; }
      opt.deadline_ms = parsed;
    } else if (arg == "--max-retries") {
      if (!need_long("--max-retries", 0, parsed)) { exit_code = 2; return std::nullopt; }
      opt.max_retries = static_cast<int>(parsed);
    } else if (arg == "--backoff-ms") {
      if (!need_long("--backoff-ms", 0, parsed)) { exit_code = 2; return std::nullopt; }
      opt.backoff_ms = parsed;
    } else if (arg == "--chaos") {
      const auto v = need_value("--chaos");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.chaos_spec = *v;
    } else if (arg == "--kernel") {
      const auto v = need_value("--kernel");
      if (!v || (*v != "dense" && *v != "sparse" && *v != "batch")) {
        std::cerr << "agingrun: --kernel wants dense|sparse|batch\n";
        exit_code = 2;
        return std::nullopt;
      }
      // Exported rather than stored: every layer resolves the kernel through
      // AGINGSIM_KERNEL, so one setenv reaches them all.
      ::setenv("AGINGSIM_KERNEL", v->c_str(), 1);
    } else if (arg == "--batch-guard-ps") {
      const auto v = need_value("--batch-guard-ps");
      if (!v || !env::parse_double(*v).has_value() ||
          *env::parse_double(*v) < 0.0) {
        std::cerr << "agingrun: --batch-guard-ps wants a number >= 0\n";
        exit_code = 2;
        return std::nullopt;
      }
      ::setenv("AGINGSIM_BATCH_GUARD_PS", v->c_str(), 1);
    } else if (arg == "--json") {
      const auto v = need_value("--json");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.json_path = *v;
    } else if (arg == "--trace") {
      const auto v = need_value("--trace");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.trace_path = *v;
    } else if (arg == "--metrics") {
      const auto v = need_value("--metrics");
      if (!v) { exit_code = 2; return std::nullopt; }
      opt.metrics_path = *v;
    } else {
      std::cerr << "agingrun: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      exit_code = 2;
      return std::nullopt;
    }
  }
  return opt;
}

void emit_stats(JsonWriter& json, const FaultCampaignStats& s) {
  json.key("trials").value(s.trials);
  json.key("trials_quarantined").value(s.trials_quarantined);
  json.key("ops").value(s.ops);
  json.key("faults_injected").value(s.faults_injected);
  json.key("detected_violations").value(s.detected_violations);
  json.key("escaped_violations").value(s.escaped_violations);
  json.key("uncovered_violations").value(s.uncovered_violations);
  json.key("detection_coverage").value(s.detection_coverage);
  json.key("sdc_ops").value(s.sdc_ops);
  json.key("sdc_per_10k_ops").value(s.sdc_per_10k_ops);
  json.key("masked_faults").value(s.masked_faults);
  json.key("trials_with_sdc").value(s.trials_with_sdc);
  json.key("storm_engagements").value(s.storm_engagements);
  json.key("storm_recoveries").value(s.storm_recoveries);
  json.key("avg_cycles_baseline").value(s.avg_cycles_baseline);
  json.key("avg_cycles_faulty").value(s.avg_cycles_faulty);
  json.key("throughput_degradation").value(s.throughput_degradation);
  json.key("baseline_errors_per_10k_ops")
      .value(s.baseline_errors_per_10k_ops);
}

void emit_run_stats(JsonWriter& json, const RunStats& s) {
  json.key("period_ps").value(s.period_ps);
  json.key("ops").value(s.ops);
  json.key("one_cycle_ratio").value(s.one_cycle_ratio);
  json.key("errors").value(s.errors);
  json.key("errors_per_10k_ops").value(s.errors_per_10k_ops);
  json.key("avg_cycles").value(s.avg_cycles);
  json.key("avg_latency_ps").value(s.avg_latency_ps);
  json.key("avg_power_mw").value(s.avg_power_mw);
  json.key("edp_mw_ns2").value(s.edp_mw_ns2);
}

int write_json(const Options& opt, const std::string& json) {
  if (opt.json_path == "-") {
    std::cout << json << "\n";
    return 0;
  }
  // Same atomicity discipline as the checkpoint store: a run killed while
  // writing its report must not leave a torn JSON behind for cmp(1).
  const std::string tmp = opt.json_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      std::cerr << "agingrun: cannot write " << tmp << "\n";
      return 2;
    }
    out << json << "\n";
  }
  if (std::rename(tmp.c_str(), opt.json_path.c_str()) != 0) {
    std::cerr << "agingrun: cannot rename " << tmp << "\n";
    return 2;
  }
  return 0;
}

int run_tool(const Options& opt) {
  // Flip the recorders before any instrumented code runs; the files are
  // written after the campaign JSON below. AGINGSIM_TRACE/AGINGSIM_METRICS
  // (handled in src/obs/artifacts.cpp) remain usable alongside the flags.
  if (!opt.trace_path.empty()) obs::set_trace_enabled(true);
  if (!opt.metrics_path.empty()) obs::set_metrics_enabled(true);
  runtime::RunnerConfig runner_config = runtime::RunnerConfig::from_env();
  runtime::CancelToken stop;
  const SignalGuard signal_guard(stop);
  runner_config.stop = &stop;
  runner_config.max_retries = opt.max_retries;
  runner_config.deadline = std::chrono::milliseconds(opt.deadline_ms);
  runner_config.backoff_base = std::chrono::milliseconds(opt.backoff_ms);
  if (!opt.chaos_spec.empty()) {
    std::string error;
    const auto chaos = runtime::ChaosPolicy::parse(opt.chaos_spec, &error);
    if (!chaos) {
      std::cerr << "agingrun: " << error << "\n";
      return 2;
    }
    runner_config.chaos = *chaos;
  }

  const TechLibrary& lib = bench::tech();

  JsonWriter json;
  json.begin_object();
  json.key("tool").value("agingrun");
  json.key("schema_version").value(std::int64_t{1});
  json.key("campaign").value(opt.campaign);
  json.key("width").value(opt.width);

  int exit_code = 0;
  runtime::RunReport report;
  std::optional<runtime::CheckpointStore> store;
  const auto attach_store = [&](std::uint64_t digest) -> bool {
    if (opt.checkpoint_dir.empty()) return true;
    try {
      store.emplace(opt.checkpoint_dir, digest);
      if (opt.resume) {
        const runtime::CheckpointScan scan = store->load();
        if (!opt.quiet) {
          std::fprintf(stderr,
                       "agingrun: resume: %zu units restored, %zu stale "
                       "files discarded\n",
                       scan.loaded, scan.discarded);
        }
      } else {
        store->clear();
      }
    } catch (const runtime::RunError& e) {
      std::cerr << "agingrun: " << e.what() << "\n";
      return false;
    }
    runner_config.checkpoints = &*store;
    return true;
  };

  if (opt.campaign == "mc") {
    mc::McCampaignConfig mcfg;
    mcfg.width = opt.width;
    mcfg.arches = *parse_arches(opt.arch);
    mcfg.trials = opt.trials;
    mcfg.block = opt.block;
    mcfg.ops = opt.ops_set ? opt.ops : std::size_t{256};
    mcfg.seed = opt.seed;
    mcfg.years = *parse_years(opt.years);
    mcfg.variation.sigma_random = opt.sigma_random;
    mcfg.variation.sigma_grid = opt.sigma_grid;
    mcfg.variation.sigma_die = opt.sigma_die;
    mcfg.sigma_aging = opt.sigma_aging;
    mcfg.strata = opt.strata;
    mcfg.period_frac = opt.period_frac;
    // The batch word kernel is the intended fast path, but an explicit
    // --kernel (exported as AGINGSIM_KERNEL above) or a pre-set environment
    // wins — kernels are bit-identical, so the artifact doesn't change.
    if (std::getenv("AGINGSIM_KERNEL") != nullptr) {
      mcfg.kernel = SimKernel::kAuto;
    }
    const mc::McCampaign campaign(lib, std::move(mcfg));
    if (!attach_store(campaign.config_digest())) return 3;
    runtime::RobustRunner runner(runner_config);
    std::optional<mc::McResult> result;
    try {
      result = campaign.run(
          mc::McRunOptions{.runner = &runner, .report = &report});
    } catch (const runtime::RunError&) {
      // A signal-interrupted campaign is not an error: completed seed
      // blocks are checkpointed, the JSON says so, exit code is 128+signal.
      if (g_signal == 0) throw;
    }
    if (result.has_value()) {
      mc::McReportOptions report_options;
      report_options.surface_points = opt.surface_points;
      mc::write_mc_json(json, campaign.config(), *result, report_options);
    } else {
      json.key("interrupted").value(true);
    }
  } else if (opt.campaign == "fault") {
    const MultiplierNetlist mult = build_column_bypass_multiplier(opt.width);
    const double crit = critical_path_ps(mult, lib);
    const auto pats = bench::workload(opt.width, opt.ops);

    VlSystemConfig cfg;
    cfg.period_ps = opt.period_frac * crit;
    cfg.ahl.width = opt.width;
    cfg.ahl.skip = 7;
    cfg.razor.metastability_window_ps = 5.0;
    cfg.razor.edge_escape_prob = 0.5;

    json.key("critical_path_ps").value(crit);
    json.key("period_ps").value(cfg.period_ps);
    json.key("ops").value(static_cast<std::uint64_t>(opt.ops));

    FaultCampaignConfig cc;
    cc.kind = opt.kind;
    cc.trials = opt.trials;
    cc.sites_per_trial = opt.sites_per_trial;
    cc.delay_factor = opt.delay_factor;
    cc.seed = opt.seed;
    const FaultCampaign campaign(mult, lib, cfg, cc);
    if (!attach_store(campaign.config_digest(pats))) return 3;
    runtime::RobustRunner runner(runner_config);
    std::optional<FaultCampaignStats> stats;
    try {
      stats = campaign.run(
          pats, CampaignRunOptions{.runner = &runner, .report = &report});
    } catch (const runtime::RunError&) {
      // A signal-interrupted campaign is not an error: completed units are
      // checkpointed, the JSON says so, and the exit code is 128+signal.
      if (g_signal == 0) throw;
    }

    json.key("kind").value(fault_kind_name(cc.kind));
    json.key("configured_trials").value(cc.trials);
    json.key("sites_per_trial").value(cc.sites_per_trial);
    if (cc.kind == FaultKind::kDelayOutlier) {
      json.key("delay_factor").value(cc.delay_factor);
    }
    json.key("seed").value(cc.seed);
    if (stats.has_value()) {
      json.key("stats").begin_object();
      emit_stats(json, *stats);
      json.end_object();
    } else {
      json.key("interrupted").value(true);
    }
  } else {
    // Period sweep: demonstrate the sweep_periods wiring under the same
    // runtime (unit = one sweep point).
    const MultiplierNetlist mult = build_column_bypass_multiplier(opt.width);
    const double crit = critical_path_ps(mult, lib);
    const auto pats = bench::workload(opt.width, opt.ops);
    json.key("critical_path_ps").value(crit);
    json.key("period_ps").value(opt.period_frac * crit);
    json.key("ops").value(static_cast<std::uint64_t>(opt.ops));
    const auto trace = compute_op_trace(mult, lib, pats);
    const std::vector<double> periods =
        bench::linspace(0.45 * crit, 1.05 * crit, opt.sweep_points);
    runtime::Digest digest;
    digest.mix(std::string_view("agingrun-sweep/v1"))
        .mix(opt.width)
        .mix(static_cast<std::uint64_t>(opt.ops))
        .mix(opt.period_frac)
        .mix(opt.sweep_points);
    if (!attach_store(digest.value())) return 3;
    runtime::RobustRunner runner(runner_config);
    const std::vector<RunStats> points =
        bench::sweep_periods(mult, trace, periods, 7, true, 0.0, nullptr,
                             &runner, &report);

    json.key("points").begin_array();
    for (std::size_t i = 0; i < points.size(); ++i) {
      json.begin_object();
      if (report.units[i].state == runtime::UnitState::kQuarantined) {
        json.key("quarantined").value(true);
        json.key("period_ps").value(periods[i]);
      } else if (report.units[i].state == runtime::UnitState::kSkipped) {
        json.key("skipped").value(true);
        json.key("period_ps").value(periods[i]);
      } else {
        emit_run_stats(json, points[i]);
      }
      json.end_object();
    }
    json.end_array();
    if (report.interrupted()) json.key("interrupted").value(true);
  }
  json.end_object();

  if (!report.all_ok()) exit_code = 1;
  if (!opt.quiet) {
    std::fprintf(stderr, "agingrun: %s\n", report.summary().c_str());
    for (std::size_t u = 0; u < report.units.size(); ++u) {
      if (report.units[u].state == runtime::UnitState::kQuarantined) {
        std::fprintf(stderr, "agingrun: unit %zu quarantined [%s]: %s\n", u,
                     std::string(runtime::error_category_name(
                                     report.units[u].category))
                         .c_str(),
                     report.units[u].error.c_str());
      }
    }
  }
  const int write_code = write_json(opt, json.str());
  // Best-effort: a failed observability write diagnoses on stderr but never
  // changes the campaign's exit code.
  if (!opt.trace_path.empty()) (void)obs::write_trace_json(opt.trace_path);
  if (!opt.metrics_path.empty()) {
    (void)obs::write_metrics_json(opt.metrics_path);
  }
  if (g_signal != 0) {
    if (!opt.quiet) {
      std::fprintf(stderr,
                   "agingrun: interrupted by signal %d; completed units "
                   "checkpointed, rerun with --resume\n",
                   static_cast<int>(g_signal));
    }
    return 128 + static_cast<int>(g_signal);
  }
  return write_code != 0 ? write_code : exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  int exit_code = 0;
  const auto opt = parse_args(argc, argv, exit_code);
  if (!opt) return exit_code;
  try {
    return run_tool(*opt);
  } catch (const std::exception& e) {
    std::cerr << "agingrun: fatal: " << e.what() << "\n";
    return 70;
  }
}
